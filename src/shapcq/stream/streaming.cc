#include "shapcq/stream/streaming.h"

#include <algorithm>
#include <utility>

#include "shapcq/lineage/circuit.h"
#include "shapcq/lineage/engine.h"
#include "shapcq/lineage/lineage.h"
#include "shapcq/query/evaluator.h"
#include "shapcq/util/check.h"
#include "shapcq/util/combinatorics.h"

namespace shapcq {

namespace {

// The incremental path exists for the linear aggregates only — the same
// family the lineage-circuit engine handles — and respects an explicit
// method override (a requested Monte Carlo run must sample, not patch).
bool IncrementalApplies(const AggregateQuery& a, const SolverOptions& options) {
  if (a.alpha.kind() != AggKind::kSum && a.alpha.kind() != AggKind::kCount) {
    return false;
  }
  return options.method != SolveMethod::kMonteCarlo &&
         options.method != SolveMethod::kBruteForce;
}

SolveResult ExactResult(Rational score) {
  SolveResult result;
  result.is_exact = true;
  result.approximation = score.ToDouble();
  result.exact = std::move(score);
  result.algorithm = "streaming/lineage-circuit";
  return result;
}

}  // namespace

StreamingSolver::StreamingSolver(AggregateQuery a, Database* db,
                                 SolverOptions options)
    : a_(std::move(a)),
      db_(db),
      options_(std::move(options)),
      incremental_(IncrementalApplies(a_, options_)) {
  SHAPCQ_CHECK(db_ != nullptr);
}

StatusOr<FactId> StreamingSolver::InsertFact(const std::string& relation,
                                             Tuple args, bool endogenous) {
  StatusOr<FactId> id = db_->InsertFact(relation, std::move(args), endogenous);
  if (id.ok()) OnInsert(*id);
  return id;
}

Status StreamingSolver::DeleteFact(FactId id) {
  if (!db_->live(id)) {
    return NotFoundError("no live fact with id " + std::to_string(id));
  }
  OnPreDelete(id);
  return db_->DeleteFact(id);
}

void StreamingSolver::CompactTombstones() {
  db_->CompactTombstones();
  OnCompact();
}

void StreamingSolver::MarkTouched(FactId fact) {
  std::vector<Tuple> touched = AnswersTouching(a_.query, *db_, fact);
  for (Tuple& answer : touched) dirty_.insert(std::move(answer));
}

void StreamingSolver::OnInsert(FactId id) {
  if (!incremental_ || !cache_valid_) return;
  // The insert already bumped the epoch; anything beyond one step means
  // unnotified mutations slipped in.
  if (db_->epoch() != cache_epoch_ + 1) {
    cache_valid_ = false;
    return;
  }
  MarkTouched(id);
  cache_epoch_ = db_->epoch();
}

void StreamingSolver::OnPreDelete(FactId id) {
  if (!incremental_ || !cache_valid_) return;
  if (db_->epoch() != cache_epoch_ || !db_->live(id)) {
    cache_valid_ = false;
    return;
  }
  // The pinned join runs against the still-live fact; the caller performs
  // the actual delete next, bumping the epoch to the value we record.
  MarkTouched(id);
  cache_epoch_ = db_->epoch() + 1;
}

void StreamingSolver::OnCompact() {
  if (!incremental_ || !cache_valid_) return;
  // Compaction changes no contents: just absorb its epoch bump.
  if (db_->epoch() != cache_epoch_ + 1) {
    cache_valid_ = false;
    return;
  }
  cache_epoch_ = db_->epoch();
}

Rational StreamingSolver::WeightOf(const Tuple& answer) const {
  // Same convention as the batched engine: τ(t) for Sum, 1 for Count.
  return a_.alpha.kind() == AggKind::kCount ? Rational(1)
                                            : a_.tau->Evaluate(answer);
}

std::vector<std::vector<int>> StreamingSolver::ExtractAnswerClauses(
    const Tuple& answer) const {
  // Residual query Q_{x̄ -> t}: bind every free variable to the answer's
  // constant (first head occurrence; repeated head variables agree by
  // construction of the answer).
  ConjunctiveQuery bound = a_.query;
  const std::vector<std::string>& head = a_.query.head();
  for (const std::string& var : a_.query.free_variables()) {
    for (size_t position = 0; position < head.size(); ++position) {
      if (head[position] == var) {
        bound = bound.Bind(var, answer[position]);
        break;
      }
    }
  }
  IdHomomorphisms ids = EnumerateHomomorphismIds(bound, *db_);
  std::vector<std::vector<int>> clauses;
  clauses.reserve(ids.used_facts.size());
  for (const std::vector<FactId>& used : ids.used_facts) {
    std::vector<int> clause;
    clause.reserve(used.size());
    for (FactId id : used) {
      if (db_->fact(id).endogenous) clause.push_back(id);
    }
    // Self-joins may use a fact in several atoms: dedup, like the batch
    // extractor.
    std::sort(clause.begin(), clause.end());
    clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
    clauses.push_back(std::move(clause));
  }
  if (clauses.empty()) return clauses;  // answer dead
  // Canonical minimal form — identical to ExtractLineage's because the
  // player-index -> FactId renaming is monotone.
  MinimizeClauses(&clauses);
  return clauses;
}

Status StreamingSolver::RebuildAll() {
  ++stats_.full_rebuilds;
  cache_.clear();
  dirty_.clear();
  const LineageSet lineage = ExtractLineage(a_.query, *db_);
  Combinatorics comb;
  for (const AnswerLineage& answer : lineage.answers) {
    CachedAnswer entry;
    entry.clauses.reserve(answer.clauses.size());
    for (const std::vector<int>& clause : answer.clauses) {
      std::vector<int> by_fact;
      by_fact.reserve(clause.size());
      for (int player : clause) {
        by_fact.push_back(lineage.players[static_cast<size_t>(player)]);
      }
      // players is ascending, so the monotone remap keeps literals sorted
      // and clause order canonical.
      entry.clauses.push_back(std::move(by_fact));
    }
    entry.weight = WeightOf(answer.answer);
    StatusOr<std::vector<std::pair<int, Rational>>> scored =
        ScoreAnswerClauses(entry.clauses, entry.weight, options_.score,
                           options_.lineage, &comb);
    if (!scored.ok()) return scored.status();
    entry.contributions = std::move(scored).value();
    cache_.emplace(answer.answer, std::move(entry));
  }
  cache_valid_ = true;
  cache_epoch_ = db_->epoch();
  return Status::Ok();
}

Status StreamingSolver::RefreshDirty() {
  stats_.dirty_last = dirty_.size();
  Combinatorics comb;
  uint64_t touched = 0;
  for (const Tuple& answer : dirty_) {
    std::vector<std::vector<int>> clauses = ExtractAnswerClauses(answer);
    if (clauses.empty()) {
      cache_.erase(answer);  // the mutation killed this answer
      continue;
    }
    auto it = cache_.find(answer);
    if (it != cache_.end() && it->second.clauses == clauses) {
      // The mutation grazed the answer without changing its minimized
      // lineage (e.g. a redundant homomorphism): the compiled circuit and
      // its contributions are still exact.
      ++stats_.circuits_reused;
      ++touched;
      continue;
    }
    CachedAnswer entry;
    entry.clauses = std::move(clauses);
    entry.weight = WeightOf(answer);
    StatusOr<std::vector<std::pair<int, Rational>>> scored =
        ScoreAnswerClauses(entry.clauses, entry.weight, options_.score,
                           options_.lineage, &comb);
    if (!scored.ok()) return scored.status();
    entry.contributions = std::move(scored).value();
    ++stats_.answers_recomputed;
    ++touched;
    cache_[answer] = std::move(entry);
  }
  stats_.answers_reused += cache_.size() - touched;
  dirty_.clear();
  return Status::Ok();
}

std::vector<std::pair<FactId, SolveResult>> StreamingSolver::MergeCache()
    const {
  // Same merge as the batched engine: per-answer contributions in sorted
  // answer order into a per-fact accumulator. Exact canonical rationals
  // make the sum independent of grouping, so this equals a fresh batched
  // solve bitwise.
  std::vector<Rational> by_fact(static_cast<size_t>(db_->num_facts()));
  for (const auto& [answer, entry] : cache_) {
    for (const auto& [fact, contribution] : entry.contributions) {
      by_fact[static_cast<size_t>(fact)] += contribution;
    }
  }
  std::vector<FactId> endo = db_->EndogenousFacts();
  std::vector<std::pair<FactId, SolveResult>> results;
  results.reserve(endo.size());
  for (FactId id : endo) {
    results.emplace_back(
        id, ExactResult(std::move(by_fact[static_cast<size_t>(id)])));
  }
  return results;
}

StatusOr<std::vector<std::pair<FactId, SolveResult>>>
StreamingSolver::FallbackSolve() {
  ++stats_.fallback_solves;
  SolverSession session(a_, *db_);
  return session.ComputeAll(options_);
}

StatusOr<std::vector<std::pair<FactId, SolveResult>>>
StreamingSolver::ComputeAll() {
  if (!incremental_) return FallbackSolve();
  Status refreshed = Status::Ok();
  if (!cache_valid_ || db_->epoch() != cache_epoch_) {
    // First solve, or a mutation we were not told about: start over.
    refreshed = RebuildAll();
  } else {
    refreshed = RefreshDirty();
  }
  if (!refreshed.ok()) {
    if (refreshed.code() == StatusCode::kUnsupported) {
      // Compilation budget blow-up: this database is out of the circuit
      // engine's reach, and will stay out — stop trying.
      incremental_ = false;
      cache_valid_ = false;
      cache_.clear();
      dirty_.clear();
      return FallbackSolve();
    }
    return refreshed;
  }
  ++stats_.incremental_solves;
  stats_.answers_cached = cache_.size();
  return MergeCache();
}

}  // namespace shapcq
