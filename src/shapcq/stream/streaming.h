// Streaming attribution: incremental Shapley/Banzhaf over a mutating
// database.
//
// A StreamingSolver keeps a per-answer cache of the lineage-circuit
// engine's unit of work — the answer's minimized lineage DNF (with FactId
// literals), its weight, and the per-fact contribution vector scored from
// its compiled circuit. Because the linear aggregates (Sum, Count)
// decompose over answers and facts outside an answer's lineage are null
// players, a mutation can only change the scores through the answers whose
// lineage mentions the mutated fact: exactly the dirty-answer set
// AnswersTouching (query/evaluator.h) computes with a join pinned to the
// delta fact. ComputeAll therefore re-extracts and re-scores ONLY the
// dirty answers — reusing the cached contributions verbatim when the
// re-extracted clause set is unchanged — and merges per-answer
// contributions in sorted-answer order, the same merge the batched engine
// performs. Exact canonical rational arithmetic makes that sum independent
// of grouping, so mutate-then-ComputeAll is bitwise-identical to a fresh
// solve of the mutated database (the differential test in
// tests/streaming_differential_test.cc enforces this).
//
// Aggregates outside the linear family (Min/Max/Avg/Quantile), explicit
// Monte-Carlo/brute-force method requests, and compilation-budget blow-ups
// fall back to a fresh SolverSession per ComputeAll — same results, no
// incrementality. After a budget blow-up the solver stays on the fallback
// path (the budget would blow up identically on every later solve).
//
// The solver borrows the database. Route mutations either through the
// solver's own InsertFact/DeleteFact or notify it around external
// mutations (OnInsert after the insert, OnPreDelete before the delete,
// OnCompact after CompactTombstones). An unnotified mutation is detected
// through Database::epoch() and degrades to a full cache rebuild — never
// a wrong answer. Not thread-safe; callers serialize access (the daemon
// holds a per-tenant lock across mutations and streaming solves).

#ifndef SHAPCQ_STREAM_STREAMING_H_
#define SHAPCQ_STREAM_STREAMING_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "shapcq/agg/aggregate.h"
#include "shapcq/data/database.h"
#include "shapcq/shapley/session.h"
#include "shapcq/shapley/solver_options.h"
#include "shapcq/util/status.h"

namespace shapcq {

// Counters describing how a StreamingSolver earned its keep.
struct StreamingStats {
  uint64_t full_rebuilds = 0;       // cache built (or rebuilt) from scratch
  uint64_t incremental_solves = 0;  // ComputeAll calls served from the cache
  uint64_t fallback_solves = 0;     // ComputeAll calls via a fresh session
  uint64_t answers_recomputed = 0;  // dirty answers recompiled + rescored
  uint64_t answers_reused = 0;      // clean answers served from the cache
  uint64_t circuits_reused = 0;     // dirty answers with unchanged clauses
  uint64_t dirty_last = 0;          // dirty-set size at the last ComputeAll
  uint64_t answers_cached = 0;      // cache size after the last ComputeAll
};

class StreamingSolver {
 public:
  // Borrows `db` (must outlive the solver). `options` applies to every
  // solve; methods kMonteCarlo/kBruteForce disable the incremental path.
  StreamingSolver(AggregateQuery a, Database* db, SolverOptions options = {});

  // Convenience mutators: apply the mutation to the database AND notify
  // the solver, in the right order. Same contracts as Database's.
  StatusOr<FactId> InsertFact(const std::string& relation, Tuple args,
                              bool endogenous = true);
  Status DeleteFact(FactId id);
  // Compacts the database's tombstones and keeps the cache (compaction
  // preserves contents, so no answer goes dirty).
  void CompactTombstones();

  // Notification interface for externally applied mutations. OnInsert is
  // called AFTER Database::InsertFact, OnPreDelete BEFORE
  // Database::DeleteFact (the pinned dirty-answer join needs the fact
  // live), OnCompact after Database::CompactTombstones.
  void OnInsert(FactId id);
  void OnPreDelete(FactId id);
  void OnCompact();

  // Scores of all live endogenous facts, ascending by FactId — the same
  // shape (and bitwise the same exact values) as SolverSession::ComputeAll
  // on the current database state. Incremental when possible; transparent
  // fallback otherwise.
  StatusOr<std::vector<std::pair<FactId, SolveResult>>> ComputeAll();

  // Answers currently awaiting recomputation (0 right after ComputeAll).
  size_t dirty_size() const { return dirty_.size(); }
  // False once the solver has committed to the per-solve fallback path.
  bool incremental() const { return incremental_; }
  const StreamingStats& stats() const { return stats_; }
  const AggregateQuery& aggregate_query() const { return a_; }

 private:
  struct CachedAnswer {
    // Minimized lineage DNF with FactId literals (sorted clauses, sorted
    // literals) — comparable against a fresh extraction.
    std::vector<std::vector<int>> clauses;
    Rational weight;
    // Per-fact contributions of this answer's weighted indicator game.
    std::vector<std::pair<int, Rational>> contributions;
  };

  // Marks the answers whose lineage mentions `fact` dirty. Requires the
  // fact live.
  void MarkTouched(FactId fact);
  // Builds the cache from a full lineage extraction.
  Status RebuildAll();
  // Re-extracts and re-scores the dirty answers only.
  Status RefreshDirty();
  // The minimized FactId-literal clauses of one answer on the CURRENT
  // database, via the residual (fully bound) query. Empty ⇒ answer dead.
  std::vector<std::vector<int>> ExtractAnswerClauses(const Tuple& answer) const;
  Rational WeightOf(const Tuple& answer) const;
  // Merges cached per-answer contributions into the result vector.
  std::vector<std::pair<FactId, SolveResult>> MergeCache() const;
  StatusOr<std::vector<std::pair<FactId, SolveResult>>> FallbackSolve();

  AggregateQuery a_;
  Database* db_;
  SolverOptions options_;
  bool incremental_;
  bool cache_valid_ = false;
  uint64_t cache_epoch_ = 0;  // db_->epoch() the cache + dirty set reflect
  std::map<Tuple, CachedAnswer> cache_;  // sorted answer order
  std::set<Tuple> dirty_;
  StreamingStats stats_;
};

}  // namespace shapcq

#endif  // SHAPCQ_STREAM_STREAMING_H_
