// DenseBitset: a flat bitset over dense integer ids (FactIds, ValueIds).
//
// The batched engines track per-answer relevance of facts as bit
// operations over dense FactIds instead of hash sets; a relevance split of
// the whole database becomes one bitset, and membership tests in the
// per-fact loops are single-word probes.

#ifndef SHAPCQ_UTIL_BITSET_H_
#define SHAPCQ_UTIL_BITSET_H_

#include <cstdint>
#include <vector>

namespace shapcq {

class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  size_t size() const { return size_; }

  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Reset(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & uint64_t{1};
  }

  // Number of set bits.
  size_t Count() const {
    size_t count = 0;
    for (uint64_t word : words_) count += __builtin_popcountll(word);
    return count;
  }

  DenseBitset& operator|=(const DenseBitset& other) {
    for (size_t i = 0; i < words_.size() && i < other.words_.size(); ++i) {
      words_[i] |= other.words_[i];
    }
    return *this;
  }
  DenseBitset& operator&=(const DenseBitset& other) {
    for (size_t i = 0; i < words_.size(); ++i) {
      words_[i] &= i < other.words_.size() ? other.words_[i] : 0;
    }
    return *this;
  }

  // Calls `fn(index)` for every set bit, ascending.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
        fn((w << 6) + bit);
        word &= word - 1;
      }
    }
  }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace shapcq

#endif  // SHAPCQ_UTIL_BITSET_H_
