#include "shapcq/util/combinatorics.h"

#include "shapcq/util/check.h"

namespace shapcq {

const BigInt& Combinatorics::Factorial(int64_t n) {
  SHAPCQ_CHECK(n >= 0);
  if (factorials_.empty()) factorials_.push_back(BigInt(1));  // 0! = 1
  while (static_cast<int64_t>(factorials_.size()) <= n) {
    BigInt next = factorials_.back() *
                  BigInt(static_cast<int64_t>(factorials_.size()));
    factorials_.push_back(std::move(next));
  }
  return factorials_[static_cast<size_t>(n)];
}

BigInt Combinatorics::Binomial(int64_t n, int64_t k) {
  SHAPCQ_CHECK(n >= 0);
  if (k < 0 || k > n) return BigInt(0);
  return BinomialRow(n)[static_cast<size_t>(k)];
}

const std::vector<BigInt>& Combinatorics::BinomialRow(int64_t n) {
  SHAPCQ_CHECK(n >= 0);
  if (static_cast<int64_t>(rows_.size()) <= n) {
    rows_.resize(static_cast<size_t>(n) + 1);
  }
  std::vector<BigInt>& row = rows_[static_cast<size_t>(n)];
  if (row.empty()) {
    // Multiplicative recurrence C(n,k+1) = C(n,k)·(n−k)/(k+1): one
    // small-factor multiply and one single-limb exact divide per entry,
    // with no dependence on other rows.
    row.resize(static_cast<size_t>(n) + 1);
    row.front() = BigInt(1);
    for (int64_t k = 0; k + 1 <= n / 2; ++k) {
      BigInt next = row[static_cast<size_t>(k)] * BigInt(n - k);
      next /= BigInt(k + 1);
      row[static_cast<size_t>(k + 1)] = std::move(next);
    }
    for (int64_t k = n / 2 + 1; k <= n; ++k) {
      row[static_cast<size_t>(k)] = row[static_cast<size_t>(n - k)];
    }
  }
  return row;
}

const std::vector<CountValue>& Combinatorics::CountRow(int64_t n) {
  SHAPCQ_CHECK(n >= 0);
  if (static_cast<int64_t>(count_rows_.size()) <= n) {
    count_rows_.resize(static_cast<size_t>(n) + 1);
  }
  std::vector<CountValue>& row = count_rows_[static_cast<size_t>(n)];
  if (row.empty()) {
    // Same recurrence as BinomialRow, staying on the fixed-width fast path
    // until an entry outgrows 256 bits.
    row.resize(static_cast<size_t>(n) + 1);
    row.front() = CountValue(1);
    for (int64_t k = 0; k + 1 <= n / 2; ++k) {
      CountValue next = row[static_cast<size_t>(k)];
      next.MulSmall(static_cast<uint32_t>(n - k));
      next.DivSmallExact(static_cast<uint32_t>(k + 1));
      row[static_cast<size_t>(k + 1)] = std::move(next);
    }
    for (int64_t k = n / 2 + 1; k <= n; ++k) {
      row[static_cast<size_t>(k)] = row[static_cast<size_t>(n - k)];
    }
  }
  return row;
}

Rational Combinatorics::ShapleyCoefficient(int64_t n, int64_t k) {
  SHAPCQ_CHECK(n >= 1);
  SHAPCQ_CHECK(k >= 0 && k <= n - 1);
  // q_k = k!(n-k-1)!/n! = 1 / (n * C(n-1, k)).
  return Rational(BigInt(1), BigInt(n) * Binomial(n - 1, k));
}

Rational Combinatorics::Harmonic(int64_t n) {
  SHAPCQ_CHECK(n >= 0);
  Rational sum;
  for (int64_t k = 1; k <= n; ++k) {
    sum += Rational(BigInt(1), BigInt(k));
  }
  return sum;
}

BigInt Factorial(int64_t n) {
  Combinatorics comb;
  return comb.Factorial(n);
}

BigInt Binomial(int64_t n, int64_t k) {
  Combinatorics comb;
  return comb.Binomial(n, k);
}

}  // namespace shapcq
