#include "shapcq/util/combinatorics.h"

#include "shapcq/util/check.h"

namespace shapcq {

const BigInt& Combinatorics::Factorial(int64_t n) {
  SHAPCQ_CHECK(n >= 0);
  if (factorials_.empty()) factorials_.push_back(BigInt(1));  // 0! = 1
  while (static_cast<int64_t>(factorials_.size()) <= n) {
    BigInt next = factorials_.back() *
                  BigInt(static_cast<int64_t>(factorials_.size()));
    factorials_.push_back(std::move(next));
  }
  return factorials_[static_cast<size_t>(n)];
}

BigInt Combinatorics::Binomial(int64_t n, int64_t k) {
  SHAPCQ_CHECK(n >= 0);
  if (k < 0 || k > n) return BigInt(0);
  // n!/(k!(n-k)!) with cached factorials; exact division.
  BigInt result = Factorial(n);
  result /= Factorial(k);
  result /= Factorial(n - k);
  return result;
}

Rational Combinatorics::ShapleyCoefficient(int64_t n, int64_t k) {
  SHAPCQ_CHECK(n >= 1);
  SHAPCQ_CHECK(k >= 0 && k <= n - 1);
  // q_k = k!(n-k-1)!/n! = 1 / (n * C(n-1, k)).
  return Rational(BigInt(1), BigInt(n) * Binomial(n - 1, k));
}

Rational Combinatorics::Harmonic(int64_t n) {
  SHAPCQ_CHECK(n >= 0);
  Rational sum;
  for (int64_t k = 1; k <= n; ++k) {
    sum += Rational(BigInt(1), BigInt(k));
  }
  return sum;
}

BigInt Factorial(int64_t n) {
  Combinatorics comb;
  return comb.Factorial(n);
}

BigInt Binomial(int64_t n, int64_t k) {
  Combinatorics comb;
  return comb.Binomial(n, k);
}

}  // namespace shapcq
