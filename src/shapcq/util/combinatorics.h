// Exact combinatorial quantities used throughout the Shapley algorithms:
// factorials, binomial coefficients, the Shapley permutation coefficients
// q_k = k!(n-k-1)!/n!, and harmonic numbers (Proposition 5.2).

#ifndef SHAPCQ_UTIL_COMBINATORICS_H_
#define SHAPCQ_UTIL_COMBINATORICS_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "shapcq/util/bigint.h"
#include "shapcq/util/fixed_int.h"
#include "shapcq/util/rational.h"

namespace shapcq {

// Caches factorials and binomial rows. Cheap to construct; grows on demand.
// Not thread-safe; create one per computation.
class Combinatorics {
 public:
  Combinatorics() = default;

  // n! for n >= 0.
  const BigInt& Factorial(int64_t n);

  // C(n, k); 0 when k < 0 or k > n. Requires n >= 0.
  BigInt Binomial(int64_t n, int64_t k);

  // The full row [C(n,0), ..., C(n,n)], cached. Each row is built
  // independently by the multiplicative recurrence C(n,k+1) =
  // C(n,k)·(n−k)/(k+1) — small-factor multiply plus single-limb exact
  // divide per entry — which is far cheaper than the big-by-big factorial
  // quotient when the dynamic programs request whole rows repeatedly.
  const std::vector<BigInt>& BinomialRow(int64_t n);

  // BinomialRow in the counting core's CountValue representation: the same
  // multiplicative recurrence, but run through the fixed-width fast path so
  // rows up to n ≈ 260 (C(n, n/2) < 2^256) never touch the heap. Numerically
  // identical to BinomialRow entry-for-entry.
  const std::vector<CountValue>& CountRow(int64_t n);

  // The Shapley coefficient q_k = k!(n-k-1)!/n! = 1/(n*C(n-1,k)) for a game
  // with n players: the probability that a uniformly random permutation
  // places exactly k specific-player-free positions before a fixed player.
  // Requires 0 <= k <= n-1.
  Rational ShapleyCoefficient(int64_t n, int64_t k);

  // H(n) = sum_{k=1..n} 1/k, with H(0) = 0.
  Rational Harmonic(int64_t n);

 private:
  // Deques so growing the caches never moves existing entries: the
  // references Factorial/BinomialRow return stay valid across later,
  // larger requests.
  std::deque<BigInt> factorials_;            // factorials_[n] == n!
  std::deque<std::vector<BigInt>> rows_;     // rows_[n] == binomial row n
  // count_rows_[n] == binomial row n as CountValue (fixed-width fast path).
  std::deque<std::vector<CountValue>> count_rows_;
};

// Stateless one-off helpers (each call recomputes; use the class for loops).
BigInt Factorial(int64_t n);
BigInt Binomial(int64_t n, int64_t k);

}  // namespace shapcq

#endif  // SHAPCQ_UTIL_COMBINATORICS_H_
