// Exact rational arithmetic on top of BigInt.
//
// Shapley values of aggregate queries are rationals whose denominators grow
// like n! (the permutation coefficients), so all exact algorithms in this
// library compute with Rational end to end. Values are kept normalized:
// gcd(num, den) == 1, den > 0, and 0 is represented as 0/1.

#ifndef SHAPCQ_UTIL_RATIONAL_H_
#define SHAPCQ_UTIL_RATIONAL_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "shapcq/util/bigint.h"
#include "shapcq/util/status.h"

namespace shapcq {

class Rational {
 public:
  // Constructs zero.
  Rational() : numerator_(0), denominator_(1) {}
  // Intentionally implicit: integers coerce to rationals.
  Rational(int64_t value) : numerator_(value), denominator_(1) {}  // NOLINT
  Rational(int value) : Rational(static_cast<int64_t>(value)) {}   // NOLINT
  Rational(BigInt value)                                           // NOLINT
      : numerator_(std::move(value)), denominator_(1) {}
  // Constructs numerator/denominator (normalized); aborts on zero denominator.
  Rational(BigInt numerator, BigInt denominator);

  // Parses "a", "-a/b", "a/b" decimal forms.
  static StatusOr<Rational> FromString(std::string_view text);
  // Exact conversion from a finite double (every finite double is rational).
  static Rational FromDouble(double value);

  const BigInt& numerator() const { return numerator_; }
  const BigInt& denominator() const { return denominator_; }

  bool is_zero() const { return numerator_.is_zero(); }
  bool is_negative() const { return numerator_.is_negative(); }
  bool is_integer() const { return denominator_ == BigInt(1); }
  int sign() const { return numerator_.sign(); }

  double ToDouble() const;
  // "a" when integral, otherwise "a/b".
  std::string ToString() const;

  Rational operator-() const;

  Rational& operator+=(const Rational& other);
  Rational& operator-=(const Rational& other);
  Rational& operator*=(const Rational& other);
  // Aborts on division by zero.
  Rational& operator/=(const Rational& other);

  friend Rational operator+(Rational lhs, const Rational& rhs) {
    return lhs += rhs;
  }
  friend Rational operator-(Rational lhs, const Rational& rhs) {
    return lhs -= rhs;
  }
  friend Rational operator*(Rational lhs, const Rational& rhs) {
    return lhs *= rhs;
  }
  friend Rational operator/(Rational lhs, const Rational& rhs) {
    return lhs /= rhs;
  }

  // Three-way comparison: negative/zero/positive as lhs <=> rhs.
  static int Compare(const Rational& lhs, const Rational& rhs);

  // Absolute value.
  static Rational Abs(const Rational& value);

  // Floor/ceiling as BigInt (toward -inf / +inf respectively).
  BigInt Floor() const;
  BigInt Ceil() const;

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.numerator_ == b.numerator_ && a.denominator_ == b.denominator_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) {
    return !(a == b);
  }
  friend bool operator<(const Rational& a, const Rational& b) {
    return Compare(a, b) < 0;
  }
  friend bool operator<=(const Rational& a, const Rational& b) {
    return Compare(a, b) <= 0;
  }
  friend bool operator>(const Rational& a, const Rational& b) {
    return Compare(a, b) > 0;
  }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return Compare(a, b) >= 0;
  }

  friend std::ostream& operator<<(std::ostream& os, const Rational& value);

 private:
  void Normalize();

  BigInt numerator_;
  BigInt denominator_;  // always positive
};

}  // namespace shapcq

#endif  // SHAPCQ_UTIL_RATIONAL_H_
