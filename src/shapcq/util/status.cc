#include "shapcq/util/status.h"

namespace shapcq {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status UnsupportedError(std::string message) {
  return Status(StatusCode::kUnsupported, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}

}  // namespace shapcq
