// Monotonic-clock helpers for the serving stack.
//
// Journal timestamps and latency measurements must never jump with wall-
// clock adjustments, so everything time-shaped in serve/ runs on
// std::chrono::steady_clock. Journals record nanoseconds since an
// arbitrary per-process epoch: only differences are meaningful, and replay
// (serve/replay.h) treats them as opaque ordering/spacing data.

#ifndef SHAPCQ_UTIL_CLOCK_H_
#define SHAPCQ_UTIL_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace shapcq {

// Nanoseconds on the monotonic clock (arbitrary epoch, never decreases).
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The monotonic deadline `ms` milliseconds from now; never expires when
// ms <= 0 (steady_clock::time_point::max()).
inline std::chrono::steady_clock::time_point DeadlineAfterMs(int64_t ms) {
  if (ms <= 0) return std::chrono::steady_clock::time_point::max();
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
}

inline bool DeadlinePassed(std::chrono::steady_clock::time_point deadline) {
  return std::chrono::steady_clock::now() > deadline;
}

}  // namespace shapcq

#endif  // SHAPCQ_UTIL_CLOCK_H_
