// Lock-free log-bucketed latency histogram.
//
// The daemon records one sample per request from concurrent worker
// threads; /metrics renders the buckets in Prometheus exposition format
// (cumulative `le` buckets) plus p50/p99 convenience gauges. Buckets are
// powers of two in microseconds — 1us, 2us, ..., ~67s, +Inf — giving
// <= 2x relative quantile error over six orders of magnitude with 28
// fixed-size atomic counters and no allocation on the record path.

#ifndef SHAPCQ_UTIL_HISTOGRAM_H_
#define SHAPCQ_UTIL_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace shapcq {

class LatencyHistogram {
 public:
  // Bucket b < kBuckets - 1 holds samples with micros <= 2^b; the last
  // bucket is +Inf.
  static constexpr int kBuckets = 28;

  // Upper bound of bucket b in microseconds; UINT64_MAX for the +Inf
  // bucket.
  static constexpr uint64_t BucketUpperMicros(int b) {
    return b >= kBuckets - 1 ? UINT64_MAX : (uint64_t{1} << b);
  }

  void Record(uint64_t micros) {
    int b = 0;
    while (b < kBuckets - 1 && micros > BucketUpperMicros(b)) ++b;
    counts_[static_cast<size_t>(b)].fetch_add(1, std::memory_order_relaxed);
    sum_micros_.fetch_add(micros, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  // Consistent-enough copy for rendering: counters are monotone, so a
  // concurrent Record can at worst land a sample in the snapshot's sum but
  // not its buckets (or vice versa) — harmless for telemetry.
  struct Snapshot {
    std::array<uint64_t, kBuckets> counts{};
    uint64_t count = 0;
    uint64_t sum_micros = 0;

    // The upper bound (in microseconds) of the first bucket whose
    // cumulative count reaches q of the total: a <= 2x overestimate of the
    // true quantile. 0 when empty; saturates to the largest finite bound
    // for samples in the +Inf bucket.
    uint64_t QuantileMicros(double q) const {
      if (count == 0) return 0;
      uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
      if (rank >= count) rank = count - 1;
      uint64_t seen = 0;
      for (int b = 0; b < kBuckets; ++b) {
        seen += counts[static_cast<size_t>(b)];
        if (seen > rank) {
          return b >= kBuckets - 1 ? BucketUpperMicros(kBuckets - 2)
                                   : BucketUpperMicros(b);
        }
      }
      return BucketUpperMicros(kBuckets - 2);
    }
  };

  Snapshot snapshot() const {
    Snapshot s;
    for (int b = 0; b < kBuckets; ++b) {
      s.counts[static_cast<size_t>(b)] =
          counts_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    }
    s.count = count_.load(std::memory_order_relaxed);
    s.sum_micros = sum_micros_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> counts_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_micros_{0};
};

}  // namespace shapcq

#endif  // SHAPCQ_UTIL_HISTOGRAM_H_
