// Invariant-checking macros for shapcq.
//
// The library does not use exceptions (see DESIGN.md). Programmer errors and
// broken invariants abort the process with a diagnostic; recoverable errors
// are reported through Status/StatusOr (see status.h).

#ifndef SHAPCQ_UTIL_CHECK_H_
#define SHAPCQ_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace shapcq::internal {

// Prints a fatal diagnostic and aborts. Used by the SHAPCQ_CHECK macros.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition) {
  std::fprintf(stderr, "SHAPCQ_CHECK failed at %s:%d: %s\n", file, line,
               condition);
  std::fflush(stderr);
  std::abort();
}

}  // namespace shapcq::internal

// Aborts the process if `cond` does not hold. Always enabled (the exact
// algorithms in this library are useless if their invariants are violated,
// and the cost of the checks is negligible next to big-integer arithmetic).
#define SHAPCQ_CHECK(cond)                                          \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::shapcq::internal::CheckFailed(__FILE__, __LINE__, #cond);   \
    }                                                               \
  } while (false)

// Marks an unreachable code path.
#define SHAPCQ_UNREACHABLE() \
  ::shapcq::internal::CheckFailed(__FILE__, __LINE__, "unreachable")

#endif  // SHAPCQ_UTIL_CHECK_H_
