// Minimal work-queue parallelism for per-fact batch computations.
//
// The Shapley value of each fact is independent of every other fact's, so
// batch APIs fan out over a small std::thread pool. Determinism is the
// caller's job and is easy: pre-size an output vector and have fn(i) write
// only slot i; the result is then independent of scheduling.

#ifndef SHAPCQ_UTIL_PARALLEL_H_
#define SHAPCQ_UTIL_PARALLEL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

namespace shapcq {

// Resolves a thread-count request: values < 1 mean "hardware concurrency",
// and the result is clamped to [1, count] so tiny batches don't spawn idle
// threads.
inline int EffectiveThreadCount(int requested, int64_t count) {
  int threads = requested;
  if (threads < 1) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads < 1) threads = 1;
  }
  if (count < threads) threads = static_cast<int>(count);
  return threads < 1 ? 1 : threads;
}

// Runs fn(i) for every i in [0, count), using `num_threads` workers pulling
// from a shared atomic counter (num_threads < 1: hardware concurrency).
// fn must be safe to call concurrently for distinct indexes. Runs inline
// when one worker suffices. fn must not throw.
inline void ParallelFor(int64_t count, const std::function<void(int64_t)>& fn,
                        int num_threads = 0) {
  if (count <= 0) return;
  int threads = EffectiveThreadCount(num_threads, count);
  if (threads == 1) {
    for (int64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<int64_t> next{0};
  auto worker = [&]() {
    for (int64_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads - 1));
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& thread : pool) thread.join();
}

}  // namespace shapcq

#endif  // SHAPCQ_UTIL_PARALLEL_H_
