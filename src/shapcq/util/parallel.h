// Minimal work-queue parallelism for per-fact batch computations.
//
// The Shapley value of each fact is independent of every other fact's, so
// batch APIs fan out over a small std::thread pool. Determinism is the
// caller's job and is easy: pre-size an output vector and have fn(i) write
// only slot i; the result is then independent of scheduling.

#ifndef SHAPCQ_UTIL_PARALLEL_H_
#define SHAPCQ_UTIL_PARALLEL_H_

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace shapcq {

// Resolves a thread-count request: values < 1 mean "hardware concurrency",
// and the result is clamped to [1, count] so tiny batches don't spawn idle
// threads.
inline int EffectiveThreadCount(int requested, int64_t count) {
  int threads = requested;
  if (threads < 1) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads < 1) threads = 1;
  }
  if (count < threads) threads = static_cast<int>(count);
  return threads < 1 ? 1 : threads;
}

// [begin, end) of contiguous chunk `c` when [0, count) is split into
// `chunks` near-equal parts: [count·c/chunks, count·(c+1)/chunks). The
// bounds depend only on the arguments — never on scheduling — so the
// batched engines use one chunk per worker to shard per-fact work
// deterministically.
inline std::pair<int64_t, int64_t> ChunkBounds(int64_t count, int chunks,
                                               int64_t c) {
  return {count * c / chunks, count * (c + 1) / chunks};
}

// Runs fn(i) for every i in [0, count), using `num_threads` workers pulling
// from a shared atomic counter (num_threads < 1: hardware concurrency).
// fn must be safe to call concurrently for distinct indexes. Runs inline
// when one worker suffices. If fn throws (e.g. std::bad_alloc from a BigInt
// allocation), the first exception is captured, the remaining iterations
// are abandoned, and the exception is rethrown on the calling thread after
// every worker has joined — iterations already started may still complete.
inline void ParallelFor(int64_t count, const std::function<void(int64_t)>& fn,
                        int num_threads = 0) {
  if (count <= 0) return;
  int threads = EffectiveThreadCount(num_threads, count);
  if (threads == 1) {
    for (int64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<int64_t> next{0};
  std::atomic<bool> abort{false};
  std::exception_ptr first_exception;
  std::mutex exception_mutex;
  auto worker = [&]() {
    for (int64_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
      if (abort.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(exception_mutex);
        if (first_exception == nullptr) {
          first_exception = std::current_exception();
        }
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads - 1));
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& thread : pool) thread.join();
  if (first_exception != nullptr) std::rethrow_exception(first_exception);
}

}  // namespace shapcq

#endif  // SHAPCQ_UTIL_PARALLEL_H_
