#include "shapcq/util/rational.h"

#include <cmath>
#include <ostream>
#include <utility>

#include "shapcq/util/check.h"

namespace shapcq {

Rational::Rational(BigInt numerator, BigInt denominator)
    : numerator_(std::move(numerator)), denominator_(std::move(denominator)) {
  SHAPCQ_CHECK(!denominator_.is_zero());
  Normalize();
}

StatusOr<Rational> Rational::FromString(std::string_view text) {
  size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    StatusOr<BigInt> value = BigInt::FromString(text);
    if (!value.ok()) return value.status();
    return Rational(std::move(value).value());
  }
  StatusOr<BigInt> numerator = BigInt::FromString(text.substr(0, slash));
  if (!numerator.ok()) return numerator.status();
  StatusOr<BigInt> denominator = BigInt::FromString(text.substr(slash + 1));
  if (!denominator.ok()) return denominator.status();
  if (denominator->is_zero()) {
    return InvalidArgumentError("rational literal with zero denominator");
  }
  return Rational(std::move(numerator).value(),
                  std::move(denominator).value());
}

Rational Rational::FromDouble(double value) {
  SHAPCQ_CHECK(std::isfinite(value));
  if (value == 0.0) return Rational();
  int exponent = 0;
  // mantissa in [0.5, 1); value = mantissa * 2^exponent.
  double mantissa = std::frexp(value, &exponent);
  // 53 doublings make the mantissa integral for IEEE-754 binary64.
  int64_t scaled = static_cast<int64_t>(std::ldexp(mantissa, 53));
  exponent -= 53;
  BigInt numerator(scaled);
  if (exponent >= 0) {
    return Rational(numerator * BigInt::TwoPow(static_cast<uint64_t>(exponent)));
  }
  return Rational(std::move(numerator),
                  BigInt::TwoPow(static_cast<uint64_t>(-exponent)));
}

double Rational::ToDouble() const {
  // Good enough for reporting; exact computations never round-trip through
  // double.
  return numerator_.ToDouble() / denominator_.ToDouble();
}

std::string Rational::ToString() const {
  if (is_integer()) return numerator_.ToString();
  return numerator_.ToString() + "/" + denominator_.ToString();
}

Rational Rational::operator-() const {
  Rational result = *this;
  result.numerator_.Negate();
  return result;
}

Rational& Rational::operator+=(const Rational& other) {
  numerator_ = numerator_ * other.denominator_ +
               other.numerator_ * denominator_;
  denominator_ *= other.denominator_;
  Normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& other) {
  numerator_ = numerator_ * other.denominator_ -
               other.numerator_ * denominator_;
  denominator_ *= other.denominator_;
  Normalize();
  return *this;
}

Rational& Rational::operator*=(const Rational& other) {
  numerator_ *= other.numerator_;
  denominator_ *= other.denominator_;
  Normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& other) {
  SHAPCQ_CHECK(!other.is_zero());
  // Copy first: `other` may alias `*this`.
  BigInt other_num = other.numerator_;
  BigInt other_den = other.denominator_;
  numerator_ *= other_den;
  denominator_ *= other_num;
  Normalize();
  return *this;
}

int Rational::Compare(const Rational& lhs, const Rational& rhs) {
  // Denominators are positive, so cross-multiplication preserves order.
  return BigInt::Compare(lhs.numerator_ * rhs.denominator_,
                         rhs.numerator_ * lhs.denominator_);
}

Rational Rational::Abs(const Rational& value) {
  return value.is_negative() ? -value : value;
}

BigInt Rational::Floor() const {
  BigInt quotient, remainder;
  BigInt::DivMod(numerator_, denominator_, &quotient, &remainder);
  if (remainder.is_negative()) quotient -= BigInt(1);
  return quotient;
}

BigInt Rational::Ceil() const {
  BigInt quotient, remainder;
  BigInt::DivMod(numerator_, denominator_, &quotient, &remainder);
  if (remainder.sign() > 0) quotient += BigInt(1);
  return quotient;
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.ToString();
}

void Rational::Normalize() {
  if (denominator_.is_negative()) {
    numerator_.Negate();
    denominator_.Negate();
  }
  if (numerator_.is_zero()) {
    denominator_ = BigInt(1);
    return;
  }
  BigInt gcd = BigInt::Gcd(numerator_, denominator_);
  if (gcd != BigInt(1)) {
    numerator_ /= gcd;
    denominator_ /= gcd;
  }
}

}  // namespace shapcq
