// Minimal Status / StatusOr error-reporting types.
//
// shapcq follows the Google C++ style guide and does not use exceptions.
// Fallible public APIs (parsing, solving) return Status or StatusOr<T>.

#ifndef SHAPCQ_UTIL_STATUS_H_
#define SHAPCQ_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "shapcq/util/check.h"

namespace shapcq {

// Coarse error categories; `message()` carries the human-readable detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (e.g., unparsable CQ text)
  kUnsupported,       // valid input outside an algorithm's scope
  kNotFound,          // a referenced entity does not exist
  kFailedPrecondition,
  kInternal,
  kDeadlineExceeded,  // a serving deadline cancelled the computation
  kResourceExhausted, // admission control rejected the request
};

// Returns a short stable name for `code` ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

// A success-or-error result without a payload.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable rendering: "OK" or "INVALID_ARGUMENT: ...".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Convenience constructors mirroring absl.
Status InvalidArgumentError(std::string message);
Status UnsupportedError(std::string message);
Status NotFoundError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);
Status DeadlineExceededError(std::string message);
Status ResourceExhaustedError(std::string message);

// A value of type T or an error Status. `value()` aborts on error access,
// so callers must test `ok()` first (or use `value_or` patterns themselves).
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, mirroring absl::StatusOr ergonomics.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    SHAPCQ_CHECK(!status_.ok());  // an OK StatusOr must carry a value
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SHAPCQ_CHECK(ok());
    return *value_;
  }
  T& value() & {
    SHAPCQ_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    SHAPCQ_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace shapcq

#endif  // SHAPCQ_UTIL_STATUS_H_
