// Arbitrary-precision signed integer.
//
// The Shapley dynamic programs count subsets of databases, so intermediate
// values routinely exceed 2^64 (e.g., the number of k-subsets of a few
// hundred facts). BigInt is a from-scratch sign-magnitude implementation
// with base-2^32 limbs, sized for the needs of this library: exact,
// allocation-friendly, and fast enough that arithmetic never dominates the
// dynamic programs it supports.

#ifndef SHAPCQ_UTIL_BIGINT_H_
#define SHAPCQ_UTIL_BIGINT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "shapcq/util/status.h"

namespace shapcq {

class BigInt {
 public:
  // Constructs zero.
  BigInt() = default;
  // Intentionally implicit: integer literals should work wherever BigInt is
  // expected (counts, coefficients).
  BigInt(int64_t value);  // NOLINT
  BigInt(int value) : BigInt(static_cast<int64_t>(value)) {}  // NOLINT

  BigInt(const BigInt&) = default;
  BigInt(BigInt&&) = default;
  BigInt& operator=(const BigInt&) = default;
  BigInt& operator=(BigInt&&) = default;

  // Parses a decimal integer with optional leading '-' or '+'.
  static StatusOr<BigInt> FromString(std::string_view text);

  // Returns -1, 0, or +1 for negative, zero, or positive values.
  int sign() const { return sign_; }
  bool is_zero() const { return sign_ == 0; }
  bool is_negative() const { return sign_ < 0; }

  // Returns true if the value fits in int64_t.
  bool FitsInInt64() const;
  // Returns the value as int64_t; requires FitsInInt64().
  int64_t ToInt64() const;
  // Returns the closest double (may lose precision or overflow to +-inf).
  double ToDouble() const;
  // Decimal rendering, e.g. "-1234567890123456789012".
  std::string ToString() const;

  // Number of bits in the magnitude (0 for zero).
  int BitLength() const;

  BigInt operator-() const;
  BigInt& Negate();

  BigInt& operator+=(const BigInt& other);
  BigInt& operator-=(const BigInt& other);
  BigInt& operator*=(const BigInt& other);
  // Truncated division (quotient rounds toward zero, like C++ int division);
  // aborts on division by zero.
  BigInt& operator/=(const BigInt& other);
  BigInt& operator%=(const BigInt& other);

  friend BigInt operator+(BigInt lhs, const BigInt& rhs) { return lhs += rhs; }
  friend BigInt operator-(BigInt lhs, const BigInt& rhs) { return lhs -= rhs; }
  friend BigInt operator*(BigInt lhs, const BigInt& rhs) { return lhs *= rhs; }
  friend BigInt operator/(BigInt lhs, const BigInt& rhs) { return lhs /= rhs; }
  friend BigInt operator%(BigInt lhs, const BigInt& rhs) { return lhs %= rhs; }

  // Computes quotient and remainder in one pass (truncated division; the
  // remainder has the sign of the dividend). Aborts if `divisor` is zero.
  static void DivMod(const BigInt& dividend, const BigInt& divisor,
                     BigInt* quotient, BigInt* remainder);

  // Greatest common divisor of the magnitudes; Gcd(0, 0) == 0.
  static BigInt Gcd(BigInt a, BigInt b);

  // Returns base^exponent; requires exponent >= 0. Pow(0, 0) == 1.
  static BigInt Pow(const BigInt& base, uint64_t exponent);
  // Returns 2^exponent.
  static BigInt TwoPow(uint64_t exponent);

  // Three-way comparison: negative/zero/positive as lhs <=> rhs.
  static int Compare(const BigInt& lhs, const BigInt& rhs);

  // Low-level magnitude access for the fixed-width fast path
  // (util/fixed_int.h): little-endian base-2^32 limbs of |*this|.
  int num_limbs32() const { return static_cast<int>(limbs_.size()); }
  uint32_t limb32(int i) const { return limbs_[static_cast<size_t>(i)]; }
  // Builds sign · magnitude from little-endian 64-bit words (the sign is
  // coerced to 0 when the magnitude is zero).
  static BigInt FromMagnitude64(const uint64_t* words, int count, int sign);

  friend bool operator==(const BigInt& a, const BigInt& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator!=(const BigInt& a, const BigInt& b) {
    return Compare(a, b) != 0;
  }
  friend bool operator<(const BigInt& a, const BigInt& b) {
    return Compare(a, b) < 0;
  }
  friend bool operator<=(const BigInt& a, const BigInt& b) {
    return Compare(a, b) <= 0;
  }
  friend bool operator>(const BigInt& a, const BigInt& b) {
    return Compare(a, b) > 0;
  }
  friend bool operator>=(const BigInt& a, const BigInt& b) {
    return Compare(a, b) >= 0;
  }

  friend std::ostream& operator<<(std::ostream& os, const BigInt& value);

 private:
  // Magnitude comparison helpers (ignore sign).
  static int CompareMagnitude(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b);
  static void AddMagnitude(std::vector<uint32_t>* a,
                           const std::vector<uint32_t>& b);
  // Requires |a| >= |b|.
  static void SubMagnitude(std::vector<uint32_t>* a,
                           const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  // Long division of magnitudes; returns quotient, stores remainder.
  static std::vector<uint32_t> DivModMagnitude(
      const std::vector<uint32_t>& a, const std::vector<uint32_t>& b,
      std::vector<uint32_t>* remainder);

  void TrimAndFixSign();
  // Multiplies the magnitude by a small value and adds a small value
  // (used by the decimal parser).
  void MulAddSmall(uint32_t multiplier, uint32_t addend);
  // Divides the magnitude by a small value, returns the remainder
  // (used by the decimal printer).
  uint32_t DivSmall(uint32_t divisor);

  // Little-endian base-2^32 limbs; empty iff the value is zero.
  std::vector<uint32_t> limbs_;
  int sign_ = 0;  // -1, 0, or +1; zero iff limbs_ is empty.
};

}  // namespace shapcq

#endif  // SHAPCQ_UTIL_BIGINT_H_
