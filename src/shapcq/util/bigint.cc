#include "shapcq/util/bigint.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "shapcq/util/check.h"

namespace shapcq {

namespace {

constexpr uint64_t kBase = uint64_t{1} << 32;

}  // namespace

BigInt::BigInt(int64_t value) {
  if (value == 0) return;
  sign_ = value > 0 ? 1 : -1;
  // Careful with INT64_MIN: negate in unsigned space.
  uint64_t magnitude =
      value > 0 ? static_cast<uint64_t>(value)
                : ~static_cast<uint64_t>(value) + 1;
  limbs_.push_back(static_cast<uint32_t>(magnitude & 0xffffffffu));
  if (magnitude >> 32) limbs_.push_back(static_cast<uint32_t>(magnitude >> 32));
}

StatusOr<BigInt> BigInt::FromString(std::string_view text) {
  if (text.empty()) return InvalidArgumentError("empty integer literal");
  size_t pos = 0;
  int sign = 1;
  if (text[0] == '-' || text[0] == '+') {
    sign = text[0] == '-' ? -1 : 1;
    pos = 1;
  }
  if (pos == text.size()) {
    return InvalidArgumentError("integer literal has no digits");
  }
  BigInt result;
  for (; pos < text.size(); ++pos) {
    char c = text[pos];
    if (c < '0' || c > '9') {
      return InvalidArgumentError("invalid digit in integer literal: " +
                                  std::string(text));
    }
    result.MulAddSmall(10, static_cast<uint32_t>(c - '0'));
  }
  if (!result.limbs_.empty()) result.sign_ = sign;
  return result;
}

bool BigInt::FitsInInt64() const {
  if (limbs_.size() > 2) return false;
  if (limbs_.size() < 2) return true;
  uint64_t magnitude =
      (static_cast<uint64_t>(limbs_[1]) << 32) | limbs_[0];
  if (sign_ > 0) return magnitude <= static_cast<uint64_t>(INT64_MAX);
  return magnitude <= static_cast<uint64_t>(INT64_MAX) + 1;
}

int64_t BigInt::ToInt64() const {
  SHAPCQ_CHECK(FitsInInt64());
  uint64_t magnitude = 0;
  if (!limbs_.empty()) magnitude = limbs_[0];
  if (limbs_.size() == 2) magnitude |= static_cast<uint64_t>(limbs_[1]) << 32;
  if (sign_ >= 0) return static_cast<int64_t>(magnitude);
  return -static_cast<int64_t>(magnitude - 1) - 1;
}

double BigInt::ToDouble() const {
  double result = 0.0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    result = result * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return sign_ < 0 ? -result : result;
}

std::string BigInt::ToString() const {
  if (is_zero()) return "0";
  BigInt copy = *this;
  std::string digits;  // least-significant digit first
  while (!copy.limbs_.empty()) {
    uint32_t rem = copy.DivSmall(1000000000u);
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  // Strip the number's leading zeros (at the back of `digits`).
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (sign_ < 0) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

int BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  uint32_t top = limbs_.back();
  int bits = 0;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits + 32 * static_cast<int>(limbs_.size() - 1);
}

BigInt BigInt::operator-() const {
  BigInt result = *this;
  result.Negate();
  return result;
}

BigInt& BigInt::Negate() {
  sign_ = -sign_;
  return *this;
}

BigInt& BigInt::operator+=(const BigInt& other) {
  if (other.is_zero()) return *this;
  if (is_zero()) {
    *this = other;
    return *this;
  }
  if (sign_ == other.sign_) {
    AddMagnitude(&limbs_, other.limbs_);
    return *this;
  }
  int cmp = CompareMagnitude(limbs_, other.limbs_);
  if (cmp == 0) {
    limbs_.clear();
    sign_ = 0;
  } else if (cmp > 0) {
    SubMagnitude(&limbs_, other.limbs_);
  } else {
    std::vector<uint32_t> result = other.limbs_;
    SubMagnitude(&result, limbs_);
    limbs_ = std::move(result);
    sign_ = other.sign_;
  }
  TrimAndFixSign();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& other) {
  if (this == &other) {
    limbs_.clear();
    sign_ = 0;
    return *this;
  }
  BigInt negated = other;
  negated.Negate();
  return *this += negated;
}

BigInt& BigInt::operator*=(const BigInt& other) {
  if (is_zero() || other.is_zero()) {
    limbs_.clear();
    sign_ = 0;
    return *this;
  }
  limbs_ = MulMagnitude(limbs_, other.limbs_);
  sign_ *= other.sign_;
  TrimAndFixSign();
  return *this;
}

BigInt& BigInt::operator/=(const BigInt& other) {
  BigInt quotient, remainder;
  DivMod(*this, other, &quotient, &remainder);
  *this = std::move(quotient);
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& other) {
  BigInt quotient, remainder;
  DivMod(*this, other, &quotient, &remainder);
  *this = std::move(remainder);
  return *this;
}

void BigInt::DivMod(const BigInt& dividend, const BigInt& divisor,
                    BigInt* quotient, BigInt* remainder) {
  SHAPCQ_CHECK(!divisor.is_zero());
  if (dividend.is_zero()) {
    *quotient = BigInt();
    *remainder = BigInt();
    return;
  }
  std::vector<uint32_t> rem_limbs;
  std::vector<uint32_t> quo_limbs =
      DivModMagnitude(dividend.limbs_, divisor.limbs_, &rem_limbs);
  BigInt quo, rem;
  quo.limbs_ = std::move(quo_limbs);
  quo.sign_ = dividend.sign_ * divisor.sign_;
  quo.TrimAndFixSign();
  rem.limbs_ = std::move(rem_limbs);
  rem.sign_ = dividend.sign_;
  rem.TrimAndFixSign();
  *quotient = std::move(quo);
  *remainder = std::move(rem);
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  a.sign_ = a.limbs_.empty() ? 0 : 1;
  b.sign_ = b.limbs_.empty() ? 0 : 1;
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::Pow(const BigInt& base, uint64_t exponent) {
  BigInt result(1);
  BigInt acc = base;
  while (exponent != 0) {
    if (exponent & 1) result *= acc;
    exponent >>= 1;
    if (exponent != 0) acc *= acc;
  }
  return result;
}

BigInt BigInt::TwoPow(uint64_t exponent) {
  BigInt result;
  result.sign_ = 1;
  result.limbs_.assign(exponent / 32 + 1, 0);
  result.limbs_.back() = uint32_t{1} << (exponent % 32);
  return result;
}

BigInt BigInt::FromMagnitude64(const uint64_t* words, int count, int sign) {
  BigInt result;
  result.limbs_.reserve(static_cast<size_t>(count) * 2);
  for (int i = 0; i < count; ++i) {
    result.limbs_.push_back(static_cast<uint32_t>(words[i]));
    result.limbs_.push_back(static_cast<uint32_t>(words[i] >> 32));
  }
  result.sign_ = sign < 0 ? -1 : 1;
  result.TrimAndFixSign();
  return result;
}

int BigInt::Compare(const BigInt& lhs, const BigInt& rhs) {
  if (lhs.sign_ != rhs.sign_) return lhs.sign_ < rhs.sign_ ? -1 : 1;
  int magnitude_cmp = CompareMagnitude(lhs.limbs_, rhs.limbs_);
  return lhs.sign_ >= 0 ? magnitude_cmp : -magnitude_cmp;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.ToString();
}

int BigInt::CompareMagnitude(const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

void BigInt::AddMagnitude(std::vector<uint32_t>* a,
                          const std::vector<uint32_t>& b) {
  if (a->size() < b.size()) a->resize(b.size(), 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < a->size(); ++i) {
    uint64_t sum = carry + (*a)[i] + (i < b.size() ? b[i] : 0u);
    (*a)[i] = static_cast<uint32_t>(sum & 0xffffffffu);
    carry = sum >> 32;
  }
  if (carry != 0) a->push_back(static_cast<uint32_t>(carry));
}

void BigInt::SubMagnitude(std::vector<uint32_t>* a,
                          const std::vector<uint32_t>& b) {
  int64_t borrow = 0;
  for (size_t i = 0; i < a->size(); ++i) {
    int64_t diff = static_cast<int64_t>((*a)[i]) - borrow -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    (*a)[i] = static_cast<uint32_t>(diff);
  }
  SHAPCQ_CHECK(borrow == 0);  // caller guarantees |a| >= |b|
  while (!a->empty() && a->back() == 0) a->pop_back();
}

std::vector<uint32_t> BigInt::MulMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  std::vector<uint32_t> result(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    uint64_t carry = 0;
    uint64_t ai = a[i];
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t cur = result[i + j] + ai * b[j] + carry;
      result[i + j] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    size_t k = i + b.size();
    while (carry != 0) {
      uint64_t cur = result[k] + carry;
      result[k] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  while (!result.empty() && result.back() == 0) result.pop_back();
  return result;
}

std::vector<uint32_t> BigInt::DivModMagnitude(
    const std::vector<uint32_t>& a, const std::vector<uint32_t>& b,
    std::vector<uint32_t>* remainder) {
  SHAPCQ_CHECK(!b.empty());
  remainder->clear();
  if (CompareMagnitude(a, b) < 0) {
    *remainder = a;
    return {};
  }
  if (b.size() == 1) {
    // Fast path: single-limb divisor.
    uint64_t divisor = b[0];
    std::vector<uint32_t> quotient(a.size(), 0);
    uint64_t rem = 0;
    for (size_t i = a.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | a[i];
      quotient[i] = static_cast<uint32_t>(cur / divisor);
      rem = cur % divisor;
    }
    while (!quotient.empty() && quotient.back() == 0) quotient.pop_back();
    if (rem != 0) remainder->push_back(static_cast<uint32_t>(rem));
    return quotient;
  }
  // Knuth algorithm D with normalization so the top divisor limb has its
  // high bit set.
  int shift = 0;
  uint32_t top = b.back();
  while ((top & 0x80000000u) == 0) {
    top <<= 1;
    ++shift;
  }
  auto shift_left = [shift](const std::vector<uint32_t>& v) {
    if (shift == 0) return v;
    std::vector<uint32_t> out(v.size() + 1, 0);
    for (size_t i = 0; i < v.size(); ++i) {
      out[i] |= v[i] << shift;
      out[i + 1] |= static_cast<uint32_t>(
          static_cast<uint64_t>(v[i]) >> (32 - shift));
    }
    while (!out.empty() && out.back() == 0) out.pop_back();
    return out;
  };
  std::vector<uint32_t> u = shift_left(a);
  std::vector<uint32_t> v = shift_left(b);
  size_t n = v.size();
  size_t m = u.size() - n;
  u.push_back(0);  // extra limb for the top of the running remainder
  std::vector<uint32_t> quotient(m + 1, 0);
  for (size_t j = m + 1; j-- > 0;) {
    // Estimate the quotient limb from the top two limbs of u against the
    // top limb of v, then correct (at most twice, per Knuth).
    uint64_t numerator =
        (static_cast<uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    uint64_t qhat = numerator / v[n - 1];
    uint64_t rhat = numerator % v[n - 1];
    while (qhat >= kBase ||
           qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= kBase) break;
    }
    // Multiply-and-subtract u[j..j+n] -= qhat * v.
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t product = qhat * v[i] + carry;
      carry = product >> 32;
      int64_t diff = static_cast<int64_t>(u[i + j]) -
                     static_cast<int64_t>(product & 0xffffffffu) - borrow;
      if (diff < 0) {
        diff += static_cast<int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<uint32_t>(diff);
    }
    int64_t top_diff = static_cast<int64_t>(u[j + n]) -
                       static_cast<int64_t>(carry) - borrow;
    if (top_diff < 0) {
      // qhat was one too large: add v back.
      top_diff += static_cast<int64_t>(kBase);
      --qhat;
      uint64_t add_carry = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t sum = static_cast<uint64_t>(u[i + j]) + v[i] + add_carry;
        u[i + j] = static_cast<uint32_t>(sum & 0xffffffffu);
        add_carry = sum >> 32;
      }
      top_diff += static_cast<int64_t>(add_carry);
      top_diff &= static_cast<int64_t>(kBase) - 1;
    }
    u[j + n] = static_cast<uint32_t>(top_diff);
    quotient[j] = static_cast<uint32_t>(qhat);
  }
  // Denormalize the remainder.
  u.resize(n);
  if (shift != 0) {
    for (size_t i = 0; i + 1 < u.size(); ++i) {
      u[i] = (u[i] >> shift) |
             static_cast<uint32_t>(static_cast<uint64_t>(u[i + 1])
                                   << (32 - shift));
    }
    u.back() >>= shift;
  }
  while (!u.empty() && u.back() == 0) u.pop_back();
  while (!quotient.empty() && quotient.back() == 0) quotient.pop_back();
  *remainder = std::move(u);
  return quotient;
}

void BigInt::TrimAndFixSign() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) sign_ = 0;
}

void BigInt::MulAddSmall(uint32_t multiplier, uint32_t addend) {
  uint64_t carry = addend;
  for (uint32_t& limb : limbs_) {
    uint64_t cur = static_cast<uint64_t>(limb) * multiplier + carry;
    limb = static_cast<uint32_t>(cur & 0xffffffffu);
    carry = cur >> 32;
  }
  while (carry != 0) {
    limbs_.push_back(static_cast<uint32_t>(carry & 0xffffffffu));
    carry >>= 32;
  }
  if (!limbs_.empty() && sign_ == 0) sign_ = 1;
  TrimAndFixSign();
}

uint32_t BigInt::DivSmall(uint32_t divisor) {
  SHAPCQ_CHECK(divisor != 0);
  uint64_t rem = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    uint64_t cur = (rem << 32) | limbs_[i];
    limbs_[i] = static_cast<uint32_t>(cur / divisor);
    rem = cur % divisor;
  }
  TrimAndFixSign();
  return static_cast<uint32_t>(rem);
}

}  // namespace shapcq
