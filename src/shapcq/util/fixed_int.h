// Fixed-width counting integers: the allocation-free fast path of the
// counting core.
//
// The circuit model-counting passes, the batched Sum/Count delta series,
// and the binomial rows they smooth with spend almost all of their time on
// integers that fit comfortably in a couple of machine words — BigInt pays
// a heap allocation per temporary anyway. FixedInt is a sign-magnitude
// integer with kLimbs inline 64-bit limbs (256 bits of magnitude) whose
// every operation DETECTS overflow instead of wrapping: each op reports
// whether the exact result still fits, so callers can escape to arbitrary
// precision instead of losing bits.
//
// CountValue packages that escape protocol. It starts as a FixedInt and
// promotes itself to a heap BigInt the first time an operation would
// overflow; once promoted it stays big (monotone escape — no oscillation).
// All arithmetic is exact in either representation, so a computation
// routed through CountValue produces values identical to a pure-BigInt
// computation — the final ToBigInt()/Rational conversion is canonical and
// scores stay bitwise-identical.

#ifndef SHAPCQ_UTIL_FIXED_INT_H_
#define SHAPCQ_UTIL_FIXED_INT_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "shapcq/util/bigint.h"
#include "shapcq/util/check.h"

namespace shapcq {

class FixedInt {
 public:
  static constexpr int kLimbs = 4;  // 256-bit magnitude

  constexpr FixedInt() : sign_(0), limbs_{} {}
  explicit FixedInt(int64_t value) : sign_(0), limbs_{} {
    if (value != 0) {
      sign_ = value < 0 ? -1 : 1;
      // Two's-complement-safe |value| (INT64_MIN included).
      limbs_[0] = value < 0
                      ? static_cast<uint64_t>(-(value + 1)) + 1
                      : static_cast<uint64_t>(value);
    }
  }

  int sign() const { return sign_; }
  bool is_zero() const { return sign_ == 0; }
  void Negate() { sign_ = -sign_; }

  // out = a ± b / a · b. Return false when the exact magnitude needs a
  // fifth limb; *out is unspecified then (callers keep the inputs and
  // escape to BigInt). Aliasing out with a or b is allowed.
  static bool Add(const FixedInt& a, const FixedInt& b, FixedInt* out) {
    if (a.sign_ == 0) {
      *out = b;
      return true;
    }
    if (b.sign_ == 0) {
      *out = a;
      return true;
    }
    if (a.sign_ == b.sign_) {
      const int sign = a.sign_;
      if (!AddMagnitude(a, b, out)) return false;
      out->sign_ = sign;
      return true;
    }
    const int cmp = CompareMagnitude(a, b);
    if (cmp == 0) {
      *out = FixedInt();
      return true;
    }
    const int sign = cmp > 0 ? a.sign_ : b.sign_;
    if (cmp > 0) {
      SubMagnitude(a, b, out);
    } else {
      SubMagnitude(b, a, out);
    }
    out->sign_ = sign;
    return true;
  }

  static bool Sub(const FixedInt& a, const FixedInt& b, FixedInt* out) {
    FixedInt negated = b;
    negated.sign_ = -negated.sign_;
    return Add(a, negated, out);
  }

  static bool Mul(const FixedInt& a, const FixedInt& b, FixedInt* out) {
    if (a.sign_ == 0 || b.sign_ == 0) {
      *out = FixedInt();
      return true;
    }
    uint64_t wide[2 * kLimbs] = {};
    for (int i = 0; i < kLimbs; ++i) {
      uint64_t carry = 0;
      for (int j = 0; j < kLimbs; ++j) {
        const unsigned __int128 cur =
            static_cast<unsigned __int128>(a.limbs_[i]) * b.limbs_[j] +
            wide[i + j] + carry;
        wide[i + j] = static_cast<uint64_t>(cur);
        carry = static_cast<uint64_t>(cur >> 64);
      }
      wide[i + kLimbs] = carry;
    }
    for (int i = kLimbs; i < 2 * kLimbs; ++i) {
      if (wide[i] != 0) return false;
    }
    const int sign = a.sign_ * b.sign_;
    std::memcpy(out->limbs_, wide, sizeof(out->limbs_));
    out->sign_ = sign;
    return true;
  }

  // out = a · m for a small factor.
  static bool MulSmall(const FixedInt& a, uint32_t m, FixedInt* out) {
    if (a.sign_ == 0 || m == 0) {
      *out = FixedInt();
      return true;
    }
    uint64_t carry = 0;
    for (int i = 0; i < kLimbs; ++i) {
      const unsigned __int128 cur =
          static_cast<unsigned __int128>(a.limbs_[i]) * m + carry;
      out->limbs_[i] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out->sign_ = a.sign_;
    return carry == 0;
  }

  // In-place exact division by a small divisor (the binomial recurrence);
  // aborts if the division leaves a remainder. Never overflows.
  void DivSmallExact(uint32_t divisor) {
    SHAPCQ_CHECK(divisor != 0);
    uint64_t remainder = 0;
    for (int i = kLimbs - 1; i >= 0; --i) {
      const unsigned __int128 cur =
          (static_cast<unsigned __int128>(remainder) << 64) | limbs_[i];
      limbs_[i] = static_cast<uint64_t>(cur / divisor);
      remainder = static_cast<uint64_t>(cur % divisor);
    }
    SHAPCQ_CHECK(remainder == 0);
    if (sign_ != 0) {
      bool zero = true;
      for (int i = 0; i < kLimbs; ++i) zero = zero && limbs_[i] == 0;
      if (zero) sign_ = 0;
    }
  }

  BigInt ToBigInt() const {
    return BigInt::FromMagnitude64(limbs_, kLimbs, sign_);
  }

  // Packs `value` into *out when its magnitude fits kLimbs limbs.
  static bool FromBigInt(const BigInt& value, FixedInt* out) {
    const int limbs32 = value.num_limbs32();
    if (limbs32 > 2 * kLimbs) return false;
    *out = FixedInt();
    for (int i = 0; i < limbs32; ++i) {
      out->limbs_[i / 2] |= static_cast<uint64_t>(value.limb32(i))
                            << (32 * (i % 2));
    }
    out->sign_ = value.sign();
    return true;
  }

  // Exact equality; the unused high limbs are always zero, so the
  // representation is canonical and memcmp-comparable.
  friend bool operator==(const FixedInt& a, const FixedInt& b) {
    return a.sign_ == b.sign_ &&
           std::memcmp(a.limbs_, b.limbs_, sizeof(a.limbs_)) == 0;
  }
  friend bool operator!=(const FixedInt& a, const FixedInt& b) {
    return !(a == b);
  }

 private:
  // -1 / 0 / +1 as |a| <=> |b|.
  static int CompareMagnitude(const FixedInt& a, const FixedInt& b) {
    for (int i = kLimbs - 1; i >= 0; --i) {
      if (a.limbs_[i] != b.limbs_[i]) {
        return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
      }
    }
    return 0;
  }

  // |out| = |a| + |b|; false on carry out of the top limb. Elementwise, so
  // aliasing out with an input is safe.
  static bool AddMagnitude(const FixedInt& a, const FixedInt& b,
                           FixedInt* out) {
    uint64_t carry = 0;
    for (int i = 0; i < kLimbs; ++i) {
      const unsigned __int128 sum =
          static_cast<unsigned __int128>(a.limbs_[i]) + b.limbs_[i] + carry;
      out->limbs_[i] = static_cast<uint64_t>(sum);
      carry = static_cast<uint64_t>(sum >> 64);
    }
    return carry == 0;
  }

  // |out| = |big| − |small|; requires |big| >= |small|.
  static void SubMagnitude(const FixedInt& big, const FixedInt& small,
                           FixedInt* out) {
    uint64_t borrow = 0;
    for (int i = 0; i < kLimbs; ++i) {
      const uint64_t subtrahend = small.limbs_[i];
      const uint64_t minuend = big.limbs_[i];
      const uint64_t diff = minuend - subtrahend - borrow;
      borrow = (minuend < subtrahend || (borrow && minuend == subtrahend))
                   ? 1
                   : 0;
      out->limbs_[i] = diff;
    }
  }

  int sign_;                 // -1, 0, +1; zero iff all limbs are zero
  uint64_t limbs_[kLimbs];   // little-endian magnitude
};

// An exact counter that starts fixed-width and escapes to a heap BigInt
// on the first overflow. The hot counting loops (polynomial convolution,
// delta-series accumulation, binomial recurrences) run entirely inline in
// the common case; values past 2^256 stay exact through the big path.
class CountValue {
 public:
  CountValue() = default;
  // Intentionally implicit, mirroring BigInt: integer literals work
  // wherever counts are expected.
  CountValue(int64_t value) : small_(value) {}  // NOLINT
  CountValue(int value) : small_(static_cast<int64_t>(value)) {}  // NOLINT
  explicit CountValue(const BigInt& value) {
    if (!FixedInt::FromBigInt(value, &small_)) {
      big_ = std::make_unique<BigInt>(value);
    }
  }

  CountValue(const CountValue& other) : small_(other.small_) {
    if (other.big_) big_ = std::make_unique<BigInt>(*other.big_);
  }
  CountValue& operator=(const CountValue& other) {
    if (this != &other) {
      small_ = other.small_;
      big_ = other.big_ ? std::make_unique<BigInt>(*other.big_) : nullptr;
    }
    return *this;
  }
  CountValue(CountValue&&) = default;
  CountValue& operator=(CountValue&&) = default;

  bool is_big() const { return big_ != nullptr; }
  bool is_zero() const { return big_ ? big_->is_zero() : small_.is_zero(); }

  CountValue& operator+=(const CountValue& other) {
    if (!big_ && !other.big_) {
      FixedInt sum;
      if (FixedInt::Add(small_, other.small_, &sum)) {
        small_ = sum;
        return *this;
      }
    }
    MakeBig();
    *big_ += other.big_ ? *other.big_ : other.small_.ToBigInt();
    return *this;
  }

  CountValue& operator-=(const CountValue& other) {
    if (!big_ && !other.big_) {
      FixedInt diff;
      if (FixedInt::Sub(small_, other.small_, &diff)) {
        small_ = diff;
        return *this;
      }
    }
    MakeBig();
    *big_ -= other.big_ ? *other.big_ : other.small_.ToBigInt();
    return *this;
  }

  // this += a · b — the convolution kernel's fused op: no temporaries and
  // no allocation while everything fits.
  void AddProduct(const CountValue& a, const CountValue& b) {
    if (!big_ && !a.big_ && !b.big_) {
      FixedInt product;
      FixedInt sum;
      if (FixedInt::Mul(a.small_, b.small_, &product) &&
          FixedInt::Add(small_, product, &sum)) {
        small_ = sum;
        return;
      }
    }
    MakeBig();
    *big_ += (a.big_ ? *a.big_ : a.small_.ToBigInt()) *
             (b.big_ ? *b.big_ : b.small_.ToBigInt());
  }

  // this += a · b for a BigInt factor (the delta-series accumulation,
  // where satisfaction counts arrive as BigInt).
  void AddProduct(const CountValue& a, const BigInt& b) {
    if (!big_ && !a.big_) {
      FixedInt fixed_b;
      FixedInt product;
      FixedInt sum;
      if (FixedInt::FromBigInt(b, &fixed_b) &&
          FixedInt::Mul(a.small_, fixed_b, &product) &&
          FixedInt::Add(small_, product, &sum)) {
        small_ = sum;
        return;
      }
    }
    MakeBig();
    *big_ += (a.big_ ? *a.big_ : a.small_.ToBigInt()) * b;
  }

  // The binomial-row recurrence ops: multiply by a small factor, divide
  // exactly by a small divisor.
  void MulSmall(uint32_t m) {
    if (!big_) {
      FixedInt product;
      if (FixedInt::MulSmall(small_, m, &product)) {
        small_ = product;
        return;
      }
      MakeBig();
    }
    *big_ *= BigInt(static_cast<int64_t>(m));
  }
  void DivSmallExact(uint32_t divisor) {
    if (!big_) {
      small_.DivSmallExact(divisor);
      return;
    }
    *big_ /= BigInt(static_cast<int64_t>(divisor));
  }

  BigInt ToBigInt() const { return big_ ? *big_ : small_.ToBigInt(); }
  std::string ToString() const { return ToBigInt().ToString(); }

  // Numeric equality across representations.
  friend bool operator==(const CountValue& x, const CountValue& y) {
    if (!x.big_ && !y.big_) return x.small_ == y.small_;
    return x.ToBigInt() == y.ToBigInt();
  }
  friend bool operator!=(const CountValue& x, const CountValue& y) {
    return !(x == y);
  }

 private:
  void MakeBig() {
    if (!big_) big_ = std::make_unique<BigInt>(small_.ToBigInt());
  }

  // small_ is authoritative iff big_ is null; after promotion it is stale
  // and never read.
  FixedInt small_;
  std::unique_ptr<BigInt> big_;
};

}  // namespace shapcq

#endif  // SHAPCQ_UTIL_FIXED_INT_H_
