#include "shapcq/workload/generators.h"

#include <random>
#include <set>
#include <utility>

#include "shapcq/util/check.h"

namespace shapcq {

Database RandomDatabaseForQuery(const ConjunctiveQuery& q,
                                const RandomDatabaseOptions& options) {
  SHAPCQ_CHECK(options.domain_size >= 2);
  std::mt19937_64 rng(options.seed);
  auto random_domain_value = [&rng, &options]() {
    return Value(static_cast<int64_t>(rng() % options.domain_size) - 1);
  };
  auto percent = [&rng](int p) { return static_cast<int>(rng() % 100) < p; };
  Database db;
  std::set<std::pair<std::string, Tuple>> seen;
  std::set<std::string> generated_relations;
  for (const Atom& atom : q.atoms()) {
    if (!generated_relations.insert(atom.relation).second) continue;
    for (int i = 0; i < options.facts_per_relation; ++i) {
      // A few attempts to find a fresh tuple; duplicates are skipped.
      for (int attempt = 0; attempt < 20; ++attempt) {
        Tuple args;
        args.reserve(atom.terms.size());
        for (const Term& term : atom.terms) {
          if (term.is_constant() && percent(options.constant_match_percent)) {
            args.push_back(term.constant());
          } else {
            args.push_back(random_domain_value());
          }
        }
        if (seen.insert({atom.relation, args}).second) {
          db.AddFact(atom.relation, std::move(args),
                     percent(options.endogenous_percent));
          break;
        }
      }
    }
  }
  return db;
}

SetCoverInstance RandomSetCover(int universe_size, int num_sets,
                                int max_set_size, uint64_t seed) {
  SHAPCQ_CHECK(universe_size >= 1 && num_sets >= 1 && max_set_size >= 1);
  std::mt19937_64 rng(seed);
  SetCoverInstance instance;
  instance.universe_size = universe_size;
  for (int s = 0; s < num_sets; ++s) {
    int size = 1 + static_cast<int>(rng() % max_set_size);
    std::set<int> members;
    // Make full coverage likely: seed each set with a rotating element.
    members.insert(1 + (s % universe_size));
    while (static_cast<int>(members.size()) < size) {
      members.insert(1 + static_cast<int>(rng() % universe_size));
    }
    instance.sets.emplace_back(members.begin(), members.end());
  }
  return instance;
}

Database SetCoverAvgDatabase(const SetCoverInstance& instance, int q, int r,
                             FactId* distinguished) {
  SHAPCQ_CHECK(q >= 0 && r >= 0);
  const int n = instance.universe_size;
  const int m = static_cast<int>(instance.sets.size());
  Database db;
  // R(−i, j) for every element i covered by set Y_j (sets are 1-indexed).
  for (int j = 1; j <= m; ++j) {
    for (int i : instance.sets[static_cast<size_t>(j - 1)]) {
      SHAPCQ_CHECK(i >= 1 && i <= n);
      db.AddExogenous("R", {Value(-i), Value(j)});
    }
  }
  // R(−n−i, m+1) for i = 1..q+1.
  for (int i = 1; i <= q + 1; ++i) {
    db.AddExogenous("R", {Value(-n - i), Value(m + 1)});
  }
  // R(1, m+1+j) for j = 1..r.
  for (int j = 1; j <= r; ++j) {
    db.AddExogenous("R", {Value(1), Value(m + 1 + j)});
  }
  db.AddExogenous("R", {Value(1), Value(0)});
  // Endogenous S facts.
  FactId s_zero = db.AddEndogenous("S", {Value(0)});
  for (int j = 1; j <= m; ++j) db.AddEndogenous("S", {Value(j)});
  for (int j = 1; j <= r; ++j) db.AddEndogenous("S", {Value(m + 1 + j)});
  // Exogenous S(m+1).
  db.AddExogenous("S", {Value(m + 1)});
  if (distinguished != nullptr) *distinguished = s_zero;
  return db;
}

Database SetCoverQuantileDatabase(const SetCoverInstance& instance, int a,
                                  int b) {
  SHAPCQ_CHECK(0 < a && a < b);
  const int n = instance.universe_size;
  const int m = static_cast<int>(instance.sets.size());
  Database db;
  const int block = b * (b - a);
  // R(j·b·(b−a) − ℓ, i) for each element j of set Y_i, ℓ = 0..b(b−a)−1.
  for (int i = 1; i <= m; ++i) {
    for (int j : instance.sets[static_cast<size_t>(i - 1)]) {
      for (int l = 0; l < block; ++l) {
        db.AddExogenous("R", {Value(j * block - l), Value(i)});
      }
    }
  }
  // R(−ℓ, 0) for ℓ = 1..b·a·n.
  for (int l = 1; l <= b * a * n; ++l) {
    db.AddExogenous("R", {Value(-l), Value(0)});
  }
  // R(n·b·(b−a) + 1, 0).
  db.AddExogenous("R", {Value(n * block + 1), Value(0)});
  // S facts: S(i) endogenous for i = 1..m, S(0) exogenous.
  for (int i = 1; i <= m; ++i) db.AddEndogenous("S", {Value(i)});
  db.AddExogenous("S", {Value(0)});
  return db;
}

Database ExactCoverDupDatabase(const SetCoverInstance& instance, int r,
                               FactId* distinguished) {
  SHAPCQ_CHECK(r >= 0);
  const int m = static_cast<int>(instance.sets.size());
  Database db;
  // R(i, j) for every element i of set Y_j.
  for (int j = 1; j <= m; ++j) {
    for (int i : instance.sets[static_cast<size_t>(j - 1)]) {
      db.AddExogenous("R", {Value(i), Value(j)});
    }
  }
  db.AddExogenous("R", {Value(0), Value(0)});
  db.AddExogenous("R", {Value(-1), Value(-1)});
  for (int rp = 1; rp <= r; ++rp) {
    db.AddExogenous("R", {Value(-2), Value(m + rp)});
  }
  // S facts.
  db.AddExogenous("S", {Value(-1)});
  FactId s_zero = db.AddEndogenous("S", {Value(0)});
  for (int j = 1; j <= m; ++j) db.AddEndogenous("S", {Value(j)});
  for (int rp = 1; rp <= r; ++rp) db.AddEndogenous("S", {Value(m + rp)});
  if (distinguished != nullptr) *distinguished = s_zero;
  return db;
}

Database BlockChainDatabase(int groups) {
  Database db;
  for (int g = 1; g <= groups; ++g) {
    int x1 = 100 * g + 1, x2 = 100 * g + 2;
    int y1 = 200 * g + 1, y2 = 200 * g + 2;
    db.AddEndogenous("R", {Value(g), Value(x1)});
    db.AddEndogenous("R", {Value(g), Value(x2)});
    db.AddEndogenous("S", {Value(x1), Value(y1)});
    db.AddEndogenous("S", {Value(x1), Value(y2)});
    db.AddEndogenous("S", {Value(x2), Value(y2)});
    db.AddEndogenous("T", {Value(y1)});
    db.AddEndogenous("T", {Value(y2)});
  }
  return db;
}

}  // namespace shapcq
