#include "shapcq/workload/random_query.h"

#include <random>
#include <string>
#include <vector>

#include "shapcq/util/check.h"

namespace shapcq {

namespace {

// One component: a random chain/tree of variables with atoms as paths.
struct Component {
  // parent[i] is the parent node of node i (-1 for the root at index 0).
  std::vector<int> parent;
  // Nodes whose root-paths appear as atoms (always includes a leaf-most
  // node so every variable occurs somewhere).
  std::vector<int> atom_nodes;
};

Component RandomTree(int max_variables, std::mt19937_64* rng) {
  Component component;
  int n = 1 + static_cast<int>((*rng)() % static_cast<uint64_t>(
                                   std::max(1, max_variables)));
  component.parent.assign(static_cast<size_t>(n), -1);
  for (int i = 1; i < n; ++i) {
    component.parent[static_cast<size_t>(i)] =
        static_cast<int>((*rng)() % static_cast<uint64_t>(i));
  }
  // Atoms: each node is an atom-node with probability 1/2; always include
  // the last node so the deepest path is materialized.
  for (int i = 0; i < n; ++i) {
    if (i == n - 1 || ((*rng)() & 1) != 0) component.atom_nodes.push_back(i);
  }
  return component;
}

std::vector<int> PathToRoot(const Component& component, int node) {
  std::vector<int> path;
  for (int v = node; v >= 0; v = component.parent[static_cast<size_t>(v)]) {
    path.push_back(v);
  }
  return path;  // node .. root
}

// Ancestor-or-self test in the tree.
bool IsAncestorOrSelf(const Component& component, int ancestor, int node) {
  for (int v = node; v >= 0; v = component.parent[static_cast<size_t>(v)]) {
    if (v == ancestor) return true;
  }
  return false;
}

}  // namespace

ConjunctiveQuery RandomQueryOfClass(HierarchyClass target,
                                    const RandomQueryOptions& options) {
  std::mt19937_64 rng(options.seed);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    std::vector<std::string> head;
    std::vector<Atom> atoms;
    int relation_counter = 0;
    int variable_counter = 0;
    for (int c = 0; c < std::max(1, options.components); ++c) {
      Component component = RandomTree(options.max_variables, &rng);
      int n = static_cast<int>(component.parent.size());
      // Variable names for this component.
      std::vector<std::string> names;
      for (int i = 0; i < n; ++i) {
        names.push_back("v" + std::to_string(variable_counter++));
      }
      // Materialize atoms (path root..node, root first) and track which
      // variables actually occur (only those may become free).
      std::vector<char> occurs(static_cast<size_t>(n), 0);
      for (int node : component.atom_nodes) {
        Atom atom;
        atom.relation = "Rel" + std::to_string(relation_counter++);
        std::vector<int> path = PathToRoot(component, node);
        for (auto it = path.rbegin(); it != path.rend(); ++it) {
          occurs[static_cast<size_t>(*it)] = 1;
          atom.terms.push_back(
              Term::Variable(names[static_cast<size_t>(*it)]));
        }
        atoms.push_back(std::move(atom));
      }
      // Choose the free variables of this component per target class.
      std::vector<char> free_flag(static_cast<size_t>(n), 0);
      switch (target) {
        case HierarchyClass::kSqHierarchical: {
          // Free set: variables that occur in EVERY atom of the component:
          // ancestors-or-self of all atom nodes. Take a random prefix of
          // the common ancestor chain (possibly empty -> Boolean part).
          std::vector<int> common;
          for (int v = 0; v < n; ++v) {
            bool in_all = true;
            for (int node : component.atom_nodes) {
              if (!IsAncestorOrSelf(component, v, node)) {
                in_all = false;
                break;
              }
            }
            if (in_all) common.push_back(v);
          }
          for (int v : common) {
            if ((rng() & 1) != 0) free_flag[static_cast<size_t>(v)] = 1;
          }
          break;
        }
        case HierarchyClass::kQHierarchical: {
          // Upward-closed free set: mark random nodes free together with
          // all their ancestors.
          for (int v = 0; v < n; ++v) {
            if (occurs[static_cast<size_t>(v)] != 0 && (rng() & 1) != 0) {
              for (int u = v; u >= 0;
                   u = component.parent[static_cast<size_t>(u)]) {
                free_flag[static_cast<size_t>(u)] = 1;
              }
            }
          }
          break;
        }
        case HierarchyClass::kAllHierarchical: {
          // Deliberately NOT upward-closed: free an occurring non-root
          // node whose parent chain stays existential (needs n >= 2).
          std::vector<int> candidates;
          for (int v = 1; v < n; ++v) {
            if (occurs[static_cast<size_t>(v)] != 0) candidates.push_back(v);
          }
          if (!candidates.empty()) {
            int v = candidates[rng() % candidates.size()];
            free_flag[static_cast<size_t>(v)] = 1;
          }
          break;
        }
        case HierarchyClass::kExistsHierarchical:
        case HierarchyClass::kGeneral: {
          // Start from a q-hierarchical-ish core; the breaking pattern is
          // appended after the loop.
          for (int v = 0; v < n; ++v) {
            if (occurs[static_cast<size_t>(v)] == 0) continue;
            if ((rng() & 1) != 0) {
              for (int u = v; u >= 0;
                   u = component.parent[static_cast<size_t>(u)]) {
                free_flag[static_cast<size_t>(u)] = 1;
              }
            }
          }
          break;
        }
      }
      for (int v = 0; v < n; ++v) {
        if (free_flag[static_cast<size_t>(v)] != 0) {
          head.push_back(names[static_cast<size_t>(v)]);
        }
      }
    }
    // Class-breaking patterns (their own fresh component).
    if (target == HierarchyClass::kExistsHierarchical ||
        target == HierarchyClass::kGeneral) {
      std::string x = "bx" + std::to_string(variable_counter++);
      std::string y = "by" + std::to_string(variable_counter++);
      Atom r{"Rel" + std::to_string(relation_counter++),
             {Term::Variable(x)}};
      Atom s{"Rel" + std::to_string(relation_counter++),
             {Term::Variable(x), Term::Variable(y)}};
      Atom t{"Rel" + std::to_string(relation_counter++),
             {Term::Variable(y)}};
      atoms.push_back(std::move(r));
      atoms.push_back(std::move(s));
      atoms.push_back(std::move(t));
      if (target == HierarchyClass::kExistsHierarchical) {
        // Free x and y: the non-hierarchical pair is free, existential
        // variables stay hierarchical.
        head.push_back(x);
        head.push_back(y);
      }
      // kGeneral: x, y existential -> breaks ∃-hierarchy.
    }
    StatusOr<ConjunctiveQuery> q =
        ConjunctiveQuery::Create("Q", head, atoms);
    SHAPCQ_CHECK(q.ok());
    if (Classify(*q) == target) return std::move(q).value();
    // Retry with fresh randomness (the free-variable coin flips sometimes
    // land in a more specific class, e.g. all free -> sq).
  }
  SHAPCQ_UNREACHABLE();
}

}  // namespace shapcq
