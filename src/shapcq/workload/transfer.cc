#include "shapcq/workload/transfer.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>

#include "shapcq/hierarchy/classification.h"
#include "shapcq/util/check.h"

namespace shapcq {

namespace {

// The filler constant "c" of Lemma D.1 (outside the generated domains).
const char* kFiller = "__c";

// Instantiates an atom: x0 -> a, y0 -> b, every other variable -> filler.
Tuple Instantiate(const Atom& atom, const std::string& x0, const Value& a,
                  const std::string& y0, const Value& b) {
  Tuple args;
  args.reserve(atom.terms.size());
  for (const Term& term : atom.terms) {
    if (term.is_constant()) {
      args.push_back(term.constant());
    } else if (term.variable() == x0) {
      args.push_back(a);
    } else if (term.variable() == y0) {
      args.push_back(b);
    } else {
      args.push_back(Value(kFiller));
    }
  }
  return args;
}

// Shared construction of Lemma D.1 / Lemma E.4: given the variable pair
// (x0, y0) with atoms(x0) ⊊ atoms(y0), builds D0 from a Q_xyy-style
// database over R (binary, columns x/y) and S (unary, column y).
StatusOr<TransferResult> BuildTransfer(const ConjunctiveQuery& q0,
                                       const Database& db,
                                       const std::string& x0,
                                       const std::string& y0,
                                       ValueFunctionPtr tau,
                                       bool tau_takes_pair) {
  // φ_R: an atom containing x0 (hence y0); φ_S: an atom with y0 but not x0.
  int phi_r = -1;
  int phi_s = -1;
  for (int i = 0; i < static_cast<int>(q0.atoms().size()); ++i) {
    const Atom& atom = q0.atoms()[static_cast<size_t>(i)];
    if (atom.ContainsVariable(x0)) {
      SHAPCQ_CHECK(atom.ContainsVariable(y0));
      if (phi_r < 0) phi_r = i;
    } else if (atom.ContainsVariable(y0) && phi_s < 0) {
      phi_s = i;
    }
  }
  SHAPCQ_CHECK(phi_r >= 0 && phi_s >= 0);

  // Joinable pairs (a, b): R(a, b) ∈ D and S(b) ∈ D.
  std::set<Value> s_values;
  for (FactId id : db.FactsOf("S")) {
    s_values.insert(db.fact(id).args[0]);
  }
  std::vector<std::pair<Value, Value>> joinable;
  for (FactId id : db.FactsOf("R")) {
    const Tuple& args = db.fact(id).args;
    if (s_values.count(args[1]) > 0) joinable.emplace_back(args[0], args[1]);
  }

  TransferResult result;
  result.fact_map.assign(static_cast<size_t>(db.num_facts()), -1);
  // Exogenous filler facts for every atom and every joinable pair — except
  // at φ_R and φ_S, whose facts mirror R and S with their endo/exo status.
  for (int i = 0; i < static_cast<int>(q0.atoms().size()); ++i) {
    if (i == phi_r || i == phi_s) continue;
    const Atom& atom = q0.atoms()[static_cast<size_t>(i)];
    std::set<Tuple> added;
    for (const auto& [a, b] : joinable) {
      Tuple fact = Instantiate(atom, x0, a, y0, b);
      if (added.insert(fact).second) {
        result.d0.AddExogenous(atom.relation, std::move(fact));
      }
    }
  }
  const Atom& r_atom = q0.atoms()[static_cast<size_t>(phi_r)];
  for (FactId id : db.FactsOf("R")) {
    const Fact& fact = db.fact(id);
    Tuple image = Instantiate(r_atom, x0, fact.args[0], y0, fact.args[1]);
    result.fact_map[static_cast<size_t>(id)] =
        result.d0.AddFact(r_atom.relation, std::move(image), fact.endogenous);
  }
  const Atom& s_atom = q0.atoms()[static_cast<size_t>(phi_s)];
  for (FactId id : db.FactsOf("S")) {
    const Fact& fact = db.fact(id);
    // y0 -> the S value; x0 does not occur in φ_S (the value is arbitrary).
    Tuple image = Instantiate(s_atom, x0, Value(kFiller), y0, fact.args[0]);
    result.fact_map[static_cast<size_t>(id)] =
        result.d0.AddFact(s_atom.relation, std::move(image), fact.endogenous);
  }

  // τ0: reads the head positions of x0 (and y0, when τ takes the pair).
  std::vector<int> x0_positions;
  std::vector<int> y0_positions;
  for (int position = 0; position < q0.arity(); ++position) {
    if (q0.head()[static_cast<size_t>(position)] == x0) {
      x0_positions.push_back(position);
    }
    if (q0.head()[static_cast<size_t>(position)] == y0) {
      y0_positions.push_back(position);
    }
  }
  SHAPCQ_CHECK(!x0_positions.empty());
  if (tau_takes_pair) {
    SHAPCQ_CHECK(!y0_positions.empty());
    int px = x0_positions[0];
    int py = y0_positions[0];
    result.tau0 = MakeCallbackTau(
        [tau, px, py](const Tuple& t0) {
          return tau->Evaluate(
              {t0[static_cast<size_t>(px)], t0[static_cast<size_t>(py)]});
        },
        {px, py}, tau->ToString() + " o (x0,y0)");
  } else {
    int px = x0_positions[0];
    result.tau0 = MakeCallbackTau(
        [tau, px](const Tuple& t0) {
          return tau->Evaluate({t0[static_cast<size_t>(px)]});
        },
        {px}, tau->ToString() + " o x0");
  }
  return result;
}

}  // namespace

StatusOr<TransferResult> TransferQxyy(const ConjunctiveQuery& q0,
                                      const Database& db,
                                      ValueFunctionPtr tau) {
  if (q0.HasSelfJoin() || !IsAllHierarchical(q0) || IsQHierarchical(q0)) {
    return UnsupportedError(
        "Lemma 5.3 transfer requires a self-join-free CQ that is "
        "all-hierarchical but not q-hierarchical: " + q0.ToString());
  }
  // x0: a free variable whose atoms are strictly inside those of an
  // existential variable y0 (the q-hierarchy violation).
  for (const std::string& y0 : q0.existential_variables()) {
    std::vector<int> atoms_y = q0.AtomsContaining(y0);
    for (const std::string& x0 : q0.free_variables()) {
      std::vector<int> atoms_x = q0.AtomsContaining(x0);
      if (atoms_x.size() < atoms_y.size() &&
          std::includes(atoms_y.begin(), atoms_y.end(), atoms_x.begin(),
                        atoms_x.end())) {
        return BuildTransfer(q0, db, x0, y0, std::move(tau),
                             /*tau_takes_pair=*/false);
      }
    }
  }
  return InternalError("no q-hierarchy violation found despite class check");
}

StatusOr<TransferResult> TransferQxyyFull(const ConjunctiveQuery& q0,
                                          const Database& db,
                                          ValueFunctionPtr tau) {
  if (q0.HasSelfJoin() || !IsQHierarchical(q0) || IsSqHierarchical(q0)) {
    return UnsupportedError(
        "Lemma E.4 transfer requires a self-join-free CQ that is "
        "q-hierarchical but not sq-hierarchical: " + q0.ToString());
  }
  // x0: a free variable dominated by y0; q-hierarchy forces y0 free.
  for (const std::string& x0 : q0.free_variables()) {
    std::vector<int> atoms_x = q0.AtomsContaining(x0);
    for (const std::string& y0 : q0.variables()) {
      if (y0 == x0) continue;
      std::vector<int> atoms_y = q0.AtomsContaining(y0);
      if (atoms_x.size() < atoms_y.size() &&
          std::includes(atoms_y.begin(), atoms_y.end(), atoms_x.begin(),
                        atoms_x.end())) {
        SHAPCQ_CHECK(q0.IsFreeVariable(y0));
        return BuildTransfer(q0, db, x0, y0, std::move(tau),
                             /*tau_takes_pair=*/true);
      }
    }
  }
  return InternalError("no sq-hierarchy violation found despite class check");
}

Database ApplyMonotoneMap(const ConjunctiveQuery& q, int head_index,
                          const std::function<Value(const Value&)>& gamma,
                          const Database& db, std::vector<FactId>* fact_map) {
  SHAPCQ_CHECK(head_index >= 0 && head_index < q.arity());
  const std::string& variable = q.head()[static_cast<size_t>(head_index)];
  Database out;
  if (fact_map != nullptr) {
    fact_map->assign(static_cast<size_t>(db.num_facts()), -1);
  }
  for (FactId id = 0; id < db.num_facts(); ++id) {
    const Fact& fact = db.fact(id);
    Tuple args = fact.args;
    int atom_index = -1;
    for (int i = 0; i < static_cast<int>(q.atoms().size()); ++i) {
      if (q.atoms()[static_cast<size_t>(i)].relation == fact.relation) {
        atom_index = i;
        break;
      }
    }
    if (atom_index >= 0) {
      for (int position :
           q.atoms()[static_cast<size_t>(atom_index)].PositionsOf(variable)) {
        args[static_cast<size_t>(position)] =
            gamma(args[static_cast<size_t>(position)]);
      }
    }
    FactId image = out.AddFact(fact.relation, std::move(args),
                               fact.endogenous);
    if (fact_map != nullptr) (*fact_map)[static_cast<size_t>(id)] = image;
  }
  return out;
}

}  // namespace shapcq
