// Random conjunctive-query generator, stratified by hierarchy class.
//
// Hierarchical CQs are exactly the CQs whose variables form a forest in
// which every atom's variable set is a root-to-node path. The generator
// builds such a forest, materializes a random subset of paths as atoms,
// and then chooses the free variables to land the query in a requested
// class of Figure 1:
//
//   * sq-hierarchical: per component, either no free variables or all free
//     variables are path-ancestors of every atom (here: the component
//     root, plus full-path variables when a single chain is used);
//   * q-hierarchical: free variables are upward-closed in the forest;
//   * all-hierarchical (not q): some free variable has an existential
//     proper ancestor;
//   * ∃-hierarchical (not all): an R(x), S(x,y), T(y) pattern over free
//     x, y is appended;
//   * general: the same pattern with existential x, y.
//
// Used by the differential test harness and the ablation benchmarks.

#ifndef SHAPCQ_WORKLOAD_RANDOM_QUERY_H_
#define SHAPCQ_WORKLOAD_RANDOM_QUERY_H_

#include <cstdint>

#include "shapcq/hierarchy/classification.h"
#include "shapcq/query/cq.h"

namespace shapcq {

struct RandomQueryOptions {
  // Number of tree nodes (= candidate variables) per component.
  int max_variables = 4;
  int components = 1;  // independent components (cross product)
  uint64_t seed = 1;
};

// Generates a random self-join-free CQ whose Classify(...) is EXACTLY
// `target` (the generator retries internally until the class is hit, which
// is guaranteed to terminate by construction).
ConjunctiveQuery RandomQueryOfClass(HierarchyClass target,
                                    const RandomQueryOptions& options);

}  // namespace shapcq

#endif  // SHAPCQ_WORKLOAD_RANDOM_QUERY_H_
