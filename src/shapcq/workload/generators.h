// Synthetic workload generators.
//
// RandomDatabaseForQuery builds seeded random databases shaped to a given
// CQ (shared join domains so answers actually exist); the hardness
// constructions reproduce the databases used in the paper's lower-bound
// proofs and serve as adversarial workloads for the benchmarks:
//
//  * SetCoverAvgDatabase — Figure 3 / Lemma D.3: #Set-Cover instances
//    embedded into Avg ∘ τ_ReLU ∘ Q_xyy databases D_{q,r}.
//  * SetCoverQuantileDatabase — Lemma D.4: the Set-Cover game embedded into
//    Qnt_q ∘ τ_{>0} ∘ Q_xyy.
//  * ExactCoverDupDatabase — Lemma E.2: exact-cover (permanent) instances
//    embedded into Dup ∘ τ_ReLU ∘ Q_xyy databases D_r.

#ifndef SHAPCQ_WORKLOAD_GENERATORS_H_
#define SHAPCQ_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "shapcq/data/database.h"
#include "shapcq/query/cq.h"

namespace shapcq {

struct RandomDatabaseOptions {
  int facts_per_relation = 6;
  // Join-column constants are drawn from {-1, 0, ..., domain_size - 2}
  // (includes a negative value so ReLU-style value functions are exercised).
  int domain_size = 4;
  // Probability (in percent) that a generated fact matches the constants of
  // its atom (facts that do not match are irrelevant padding).
  int constant_match_percent = 80;
  // Probability (in percent) that a fact is endogenous.
  int endogenous_percent = 70;
  uint64_t seed = 1;
};

// A random database over the relations of `q`. Deterministic per options.
Database RandomDatabaseForQuery(const ConjunctiveQuery& q,
                                const RandomDatabaseOptions& options);

// A #Set-Cover input: universe {1..n} and a list of subsets.
struct SetCoverInstance {
  int universe_size = 0;
  std::vector<std::vector<int>> sets;
};

// A seeded random set-cover instance.
SetCoverInstance RandomSetCover(int universe_size, int num_sets,
                                int max_set_size, uint64_t seed);

// The paper's database D_{q,r} for the Avg reduction (Figure 3), over the
// schema of Q_xyy(x) <- R(x, y), S(y). `distinguished`, if non-null,
// receives the fact id of S(0) (the fact whose Shapley value encodes the
// cover counts).
Database SetCoverAvgDatabase(const SetCoverInstance& instance, int q, int r,
                             FactId* distinguished);

// The Lemma D.4 database for Qnt_{a/b} ∘ τ_{>0} ∘ Q_xyy: the Shapley value
// of S(i) equals the Shapley value of set i in the Set-Cover game.
// Requires 0 < a < b.
Database SetCoverQuantileDatabase(const SetCoverInstance& instance, int a,
                                  int b);

// The Lemma E.2 database D_r for Dup ∘ τ_ReLU ∘ Q_xyy, built from an
// exact-cover instance (sets of size 2 encode a permanent). `distinguished`
// receives the id of S(0).
Database ExactCoverDupDatabase(const SetCoverInstance& instance, int r,
                               FactId* distinguished);

// Block-structured provenance behind the non-∃-hierarchical chain query
// Q(z) <- R(z, x), S(x, y), T(y): `groups` independent blocks of 7
// endogenous facts (2 R, 3 S, 2 T) whose per-answer lineage stays within
// the block. The lineage-circuit engine's best case — per-answer circuits
// stay tiny at any group count — and brute force's worst (2^(7·groups)
// subsets). Shared by tests/lineage_test.cc and bench_hardness_crossover.
Database BlockChainDatabase(int groups);

}  // namespace shapcq

#endif  // SHAPCQ_WORKLOAD_GENERATORS_H_
