// Query-transfer constructions from the paper's reductions.
//
// * TransferQxyy (Lemma 5.3 / Lemma D.1): embeds an input database of
//   Q_xyy(x) <- R(x, y), S(y) into an input database of ANY self-join-free
//   CQ Q0 that is all-hierarchical but not q-hierarchical, preserving the
//   Shapley value of every endogenous fact (same aggregate, value function
//   lifted through the head position of Q0's dominated free variable).
//
// * TransferQxyyFull (Lemma E.4): the analogous embedding of
//   Q^full_xyy(x, y) <- R(x, y), S(y) into any self-join-free CQ that is
//   q-hierarchical but not sq-hierarchical.
//
// These are the paper's tools for propagating hardness from the two
// minimal queries to entire classes; here they double as adversarial
// workload generators and as strong numeric tests (Shapley values must be
// preserved exactly).
//
// * ApplyMonotoneMap (Observation F.3 / Theorem 7.1): rewrites a database
//   so that the value function γ ∘ τ_id^i becomes τ_id^i — the mechanism
//   behind "hardness is robust to monotone changes of the value function".

#ifndef SHAPCQ_WORKLOAD_TRANSFER_H_
#define SHAPCQ_WORKLOAD_TRANSFER_H_

#include <functional>
#include <vector>

#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/cq.h"
#include "shapcq/util/status.h"

namespace shapcq {

struct TransferResult {
  Database d0;
  // Maps each fact id of the source database to its image in d0
  // (the bijection h of Lemma D.1 on endogenous facts; exogenous facts are
  // mapped too). -1 for facts of relations other than R/S.
  std::vector<FactId> fact_map;
  // The lifted value function τ0 of the lemma.
  ValueFunctionPtr tau0;
};

// Lemma 5.3: requires q0 self-join-free, all-hierarchical, NOT
// q-hierarchical; `db` over relations R (binary) and S (unary); `tau` over
// arity-1 answers of Q_xyy.
StatusOr<TransferResult> TransferQxyy(const ConjunctiveQuery& q0,
                                      const Database& db,
                                      ValueFunctionPtr tau);

// Lemma E.4: requires q0 self-join-free, q-hierarchical, NOT
// sq-hierarchical; `tau` over arity-2 answers of Q^full_xyy.
StatusOr<TransferResult> TransferQxyyFull(const ConjunctiveQuery& q0,
                                          const Database& db,
                                          ValueFunctionPtr tau);

// Observation F.3: returns the database π(D) in which, for every atom of
// `q` and every position where the `head_index`-th head variable occurs,
// the value v is replaced by gamma(v). Endogenous/exogenous flags carry
// over; `fact_map`, if non-null, receives the fact bijection. `gamma` must
// be injective on the values that occur (duplicate collapses abort).
Database ApplyMonotoneMap(const ConjunctiveQuery& q, int head_index,
                          const std::function<Value(const Value&)>& gamma,
                          const Database& db,
                          std::vector<FactId>* fact_map = nullptr);

}  // namespace shapcq

#endif  // SHAPCQ_WORKLOAD_TRANSFER_H_
