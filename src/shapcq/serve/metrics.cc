#include "shapcq/serve/metrics.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace shapcq {

namespace {

constexpr const char kOtherLabel[] = "__other__";

void Line(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, static_cast<size_t>(n));
  out->push_back('\n');
}

void Counter(std::string* out, const char* name, const char* help,
             uint64_t value) {
  Line(out, "# HELP %s %s", name, help);
  Line(out, "# TYPE %s counter", name);
  Line(out, "%s %" PRIu64, name, value);
}

void Gauge(std::string* out, const char* name, const char* help,
           double value) {
  Line(out, "# HELP %s %s", name, help);
  Line(out, "# TYPE %s gauge", name);
  Line(out, "%s %.9g", name, value);
}

void Histogram(std::string* out, const char* name, const char* help,
               const LatencyHistogram::Snapshot& snap) {
  Line(out, "# HELP %s %s", name, help);
  Line(out, "# TYPE %s histogram", name);
  uint64_t cumulative = 0;
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    cumulative += snap.counts[static_cast<size_t>(b)];
    if (b == LatencyHistogram::kBuckets - 1) {
      Line(out, "%s_bucket{le=\"+Inf\"} %" PRIu64, name, cumulative);
    } else {
      double le = static_cast<double>(LatencyHistogram::BucketUpperMicros(b)) /
                  1e6;
      Line(out, "%s_bucket{le=\"%.9g\"} %" PRIu64, name, le, cumulative);
    }
  }
  Line(out, "%s_sum %.9g", name,
       static_cast<double>(snap.sum_micros) / 1e6);
  Line(out, "%s_count %" PRIu64, name, snap.count);
}

void QuantileGauges(std::string* out, const char* base,
                    const LatencyHistogram::Snapshot& snap) {
  char name[128];
  std::snprintf(name, sizeof(name), "%s_p50_seconds", base);
  Gauge(out, name, "estimated p50 latency (bucket upper bound)",
        static_cast<double>(snap.QuantileMicros(0.50)) / 1e6);
  std::snprintf(name, sizeof(name), "%s_p99_seconds", base);
  Gauge(out, name, "estimated p99 latency (bucket upper bound)",
        static_cast<double>(snap.QuantileMicros(0.99)) / 1e6);
}

}  // namespace

void DaemonMetrics::CountEngineFacts(const std::string& engine,
                                     uint64_t facts) {
  std::lock_guard<std::mutex> lock(engine_mu_);
  engine_facts_[engine] += facts;
}

std::map<std::string, uint64_t> DaemonMetrics::EngineMix() const {
  std::lock_guard<std::mutex> lock(engine_mu_);
  return engine_facts_;
}

void DaemonMetrics::RecordStage(const std::string& stage, uint64_t micros) {
  LatencyHistogram* histogram;
  {
    std::lock_guard<std::mutex> lock(stage_mu_);
    std::unique_ptr<LatencyHistogram>& slot = stage_latency_[stage];
    if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
    histogram = slot.get();
  }
  // Histograms are never erased, so the pointer stays valid outside the
  // lock; Record itself is lock-free.
  histogram->Record(micros);
}

std::map<std::string, LatencyHistogram::Snapshot> DaemonMetrics::StageMix()
    const {
  std::lock_guard<std::mutex> lock(stage_mu_);
  std::map<std::string, LatencyHistogram::Snapshot> out;
  for (const auto& [stage, histogram] : stage_latency_) {
    out.emplace(stage, histogram->snapshot());
  }
  return out;
}

DaemonMetrics::TenantCounters* DaemonMetrics::OwnSlot(
    const std::string& tenant) {
  // A literal "__other__" tenant must never claim the fold slot as its
  // own label — it would alias every post-cap tenant's traffic.
  if (tenant == kOtherLabel) return nullptr;
  auto it = tenant_counters_.find(tenant);
  if (it != tenant_counters_.end()) return &it->second;
  // The fold slot does not count toward the cap: exactly kMaxTenantLabels
  // real labels can exist, plus "__other__" — never kMaxTenantLabels + 1
  // real ones (the old size-based check let the fold's presence admit one
  // extra real label, a transient unbounded-cardinality hole).
  const size_t real_labels =
      tenant_counters_.size() - tenant_counters_.count(kOtherLabel);
  if (real_labels >= kMaxTenantLabels) return nullptr;
  return &tenant_counters_[tenant];
}

DaemonMetrics::TenantCounters& DaemonMetrics::TenantSlot(
    const std::string& tenant) {
  TenantCounters* own = OwnSlot(tenant);
  return own != nullptr ? *own : tenant_counters_[kOtherLabel];
}

void DaemonMetrics::CountTenantRequest(const std::string& tenant,
                                       Outcome outcome) {
  std::lock_guard<std::mutex> lock(tenant_mu_);
  TenantCounters& slot = TenantSlot(tenant);
  switch (outcome) {
    case Outcome::kOk: ++slot.ok; break;
    case Outcome::kError: ++slot.error; break;
    case Outcome::kRejected: ++slot.rejected; break;
  }
}

void DaemonMetrics::TenantQueueDelta(const std::string& tenant,
                                     int64_t delta) {
  std::lock_guard<std::mutex> lock(tenant_mu_);
  TenantSlot(tenant).queue_depth += delta;
}

void DaemonMetrics::SetTenantStaleness(const std::string& tenant,
                                       uint64_t epoch, uint64_t tombstones) {
  std::lock_guard<std::mutex> lock(tenant_mu_);
  // Staleness is a per-tenant gauge: on the shared fold slot it would be
  // last-writer-wins noise (two post-cap tenants racing to clobber each
  // other's epoch), so folded tenants simply don't report it. Their
  // additive counters (requests, circuit-cache) still fold fine.
  TenantCounters* own = OwnSlot(tenant);
  if (own == nullptr) return;
  own->epoch = epoch;
  own->tombstones = tombstones;
}

void DaemonMetrics::AddTenantCircuitCache(const std::string& tenant,
                                          uint64_t hits, uint64_t misses) {
  if (hits == 0 && misses == 0) return;
  std::lock_guard<std::mutex> lock(tenant_mu_);
  TenantCounters& slot = TenantSlot(tenant);
  slot.circuit_hits += hits;
  slot.circuit_misses += misses;
}

std::map<std::string, DaemonMetrics::TenantCounters> DaemonMetrics::TenantMix()
    const {
  std::lock_guard<std::mutex> lock(tenant_mu_);
  return tenant_counters_;
}

std::string EscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string RenderPrometheus(const DaemonMetrics& metrics,
                             const PlanCache::Stats& plan_cache,
                             const CircuitCache::Stats& circuit_cache,
                             const LineageStatsSnapshot& lineage) {
  std::string out;
  out.reserve(4096);

  // Request outcomes, labelled like a real multi-status counter.
  Line(&out, "# HELP shapcq_requests_total solve requests by outcome");
  Line(&out, "# TYPE shapcq_requests_total counter");
  Line(&out, "shapcq_requests_total{status=\"ok\"} %" PRIu64,
       metrics.requests_ok.load(std::memory_order_relaxed));
  Line(&out, "shapcq_requests_total{status=\"error\"} %" PRIu64,
       metrics.requests_error.load(std::memory_order_relaxed));
  Line(&out, "shapcq_requests_total{status=\"rejected\"} %" PRIu64,
       metrics.requests_rejected.load(std::memory_order_relaxed));

  Counter(&out, "shapcq_degraded_total",
          "requests degraded exact -> Monte Carlo by a deadline",
          metrics.requests_degraded.load(std::memory_order_relaxed));
  Counter(&out, "shapcq_connections_opened_total",
          "client connections accepted",
          metrics.connections_opened.load(std::memory_order_relaxed));
  Counter(&out, "shapcq_connections_closed_total",
          "client connections closed",
          metrics.connections_closed.load(std::memory_order_relaxed));
  Counter(&out, "shapcq_accept_errors_total",
          "accept() failures (e.g. fd exhaustion)",
          metrics.accept_errors.load(std::memory_order_relaxed));
  Counter(&out, "shapcq_journal_records_total",
          "requests appended to the journal",
          metrics.journal_records.load(std::memory_order_relaxed));
  Counter(&out, "shapcq_journal_errors_total",
          "journal append failures (requests served but not journaled)",
          metrics.journal_errors.load(std::memory_order_relaxed));

  // Streaming mutation path.
  Line(&out, "# HELP shapcq_mutations_total applied fact mutations by op");
  Line(&out, "# TYPE shapcq_mutations_total counter");
  Line(&out, "shapcq_mutations_total{op=\"insert\"} %" PRIu64,
       metrics.mutations_insert.load(std::memory_order_relaxed));
  Line(&out, "shapcq_mutations_total{op=\"delete\"} %" PRIu64,
       metrics.mutations_delete.load(std::memory_order_relaxed));
  Counter(&out, "shapcq_mutation_errors_total",
          "rejected or failed fact mutations",
          metrics.mutation_errors.load(std::memory_order_relaxed));
  Counter(&out, "shapcq_dirty_answers_total",
          "summed dirty-answer-set sizes of query-probed mutations",
          metrics.dirty_answers_total.load(std::memory_order_relaxed));
  Gauge(&out, "shapcq_dirty_answers_last",
        "dirty-answer-set size of the latest probed mutation (-1: none)",
        static_cast<double>(
            metrics.dirty_answers_last.load(std::memory_order_relaxed)));
  Counter(&out, "shapcq_compactions_total",
          "tombstone compactions triggered by the mutation path",
          metrics.compactions.load(std::memory_order_relaxed));

  Gauge(&out, "shapcq_queue_depth", "requests waiting for a worker",
        static_cast<double>(
            metrics.queue_depth.load(std::memory_order_relaxed)));
  Gauge(&out, "shapcq_in_flight", "requests being solved",
        static_cast<double>(
            metrics.in_flight.load(std::memory_order_relaxed)));

  // Per-tenant series (cardinality capped at kMaxTenantLabels +
  // "__other__"; see DaemonMetrics::TenantSlot).
  std::map<std::string, DaemonMetrics::TenantCounters> tenants =
      metrics.TenantMix();
  Line(&out, "# HELP shapcq_tenant_requests_total "
             "solve requests by tenant and outcome");
  Line(&out, "# TYPE shapcq_tenant_requests_total counter");
  for (const auto& [tenant, t] : tenants) {
    Line(&out,
         "shapcq_tenant_requests_total{tenant=\"%s\",status=\"ok\"} %" PRIu64,
         EscapeLabel(tenant).c_str(), t.ok);
    Line(&out,
         "shapcq_tenant_requests_total{tenant=\"%s\",status=\"error\"} "
         "%" PRIu64,
         EscapeLabel(tenant).c_str(), t.error);
    Line(&out,
         "shapcq_tenant_requests_total{tenant=\"%s\",status=\"rejected\"} "
         "%" PRIu64,
         EscapeLabel(tenant).c_str(), t.rejected);
  }
  Line(&out, "# HELP shapcq_tenant_queue_depth "
             "queued requests by tenant");
  Line(&out, "# TYPE shapcq_tenant_queue_depth gauge");
  for (const auto& [tenant, t] : tenants) {
    Line(&out, "shapcq_tenant_queue_depth{tenant=\"%s\"} %lld",
         EscapeLabel(tenant).c_str(), static_cast<long long>(t.queue_depth));
  }
  // Staleness: the tenant's mutation epoch and its dead rows awaiting
  // compaction (how far the columnar store has drifted from its last
  // sealed shape).
  Line(&out, "# HELP shapcq_tenant_epoch database mutation epoch by tenant");
  Line(&out, "# TYPE shapcq_tenant_epoch gauge");
  for (const auto& [tenant, t] : tenants) {
    Line(&out, "shapcq_tenant_epoch{tenant=\"%s\"} %" PRIu64, EscapeLabel(tenant).c_str(),
         t.epoch);
  }
  Line(&out, "# HELP shapcq_tenant_tombstones "
             "dead rows awaiting compaction by tenant");
  Line(&out, "# TYPE shapcq_tenant_tombstones gauge");
  for (const auto& [tenant, t] : tenants) {
    Line(&out, "shapcq_tenant_tombstones{tenant=\"%s\"} %" PRIu64,
         EscapeLabel(tenant).c_str(), t.tombstones);
  }
  // Cross-tenant circuit-cache traffic attributed per tenant: a hit means
  // this tenant's answer reused a circuit some tenant (possibly another
  // one) compiled earlier.
  Line(&out, "# HELP shapcq_tenant_circuit_cache_total "
             "circuit-cache lookups by tenant and result");
  Line(&out, "# TYPE shapcq_tenant_circuit_cache_total counter");
  for (const auto& [tenant, t] : tenants) {
    Line(&out,
         "shapcq_tenant_circuit_cache_total{tenant=\"%s\",result=\"hit\"} "
         "%" PRIu64,
         EscapeLabel(tenant).c_str(), t.circuit_hits);
    Line(&out,
         "shapcq_tenant_circuit_cache_total{tenant=\"%s\",result=\"miss\"} "
         "%" PRIu64,
         EscapeLabel(tenant).c_str(), t.circuit_misses);
  }

  // Engine mix: facts scored per engine across all ok responses.
  Line(&out, "# HELP shapcq_engine_facts_total facts scored per engine");
  Line(&out, "# TYPE shapcq_engine_facts_total counter");
  for (const auto& [engine, facts] : metrics.EngineMix()) {
    Line(&out, "shapcq_engine_facts_total{engine=\"%s\"} %" PRIu64,
         EscapeLabel(engine).c_str(), facts);
  }

  // Plan cache (process-wide, shared with any in-process CLI usage).
  Counter(&out, "shapcq_plan_cache_hits_total", "plan-cache hits",
          plan_cache.hits);
  Counter(&out, "shapcq_plan_cache_misses_total",
          "plan-cache misses (compilations)", plan_cache.misses);
  Gauge(&out, "shapcq_plan_cache_entries", "plans currently cached",
        static_cast<double>(plan_cache.entries));
  Counter(&out, "shapcq_plan_cache_evictions_total",
          "plans evicted (FIFO)", plan_cache.evictions);
  double lookups = static_cast<double>(plan_cache.hits + plan_cache.misses);
  Gauge(&out, "shapcq_plan_cache_hit_ratio",
        "hits / (hits + misses), 0 before any lookup",
        lookups > 0 ? static_cast<double>(plan_cache.hits) / lookups : 0.0);

  // Cross-tenant circuit cache (process-wide; lineage/circuit_cache.h).
  Counter(&out, "shapcq_circuit_cache_hits_total",
          "compiled-circuit cache hits (answers served without compiling)",
          circuit_cache.hits);
  Counter(&out, "shapcq_circuit_cache_misses_total",
          "compiled-circuit cache misses", circuit_cache.misses);
  Counter(&out, "shapcq_circuit_cache_inserts_total",
          "circuits inserted into the cache", circuit_cache.inserts);
  Gauge(&out, "shapcq_circuit_cache_entries", "circuits currently cached",
        static_cast<double>(circuit_cache.entries));
  Gauge(&out, "shapcq_circuit_cache_bytes",
        "approximate resident bytes of cached circuits",
        static_cast<double>(circuit_cache.bytes));
  Counter(&out, "shapcq_circuit_cache_evictions_total",
          "circuits evicted (FIFO, entry/byte bounds)",
          circuit_cache.evictions);
  double circuit_lookups =
      static_cast<double>(circuit_cache.hits + circuit_cache.misses);
  Gauge(&out, "shapcq_circuit_cache_hit_ratio",
        "hits / (hits + misses), 0 before any lookup",
        circuit_lookups > 0
            ? static_cast<double>(circuit_cache.hits) / circuit_lookups
            : 0.0);

  // Compiled-artifact persistence (persist/artifact.h).
  Counter(&out, "shapcq_artifact_load_errors_total",
          "artifact files rejected at load (corrupt/stale -> cold start)",
          metrics.artifact_load_errors.load(std::memory_order_relaxed));
  Counter(&out, "shapcq_artifact_save_errors_total",
          "artifact snapshot write failures",
          metrics.artifact_save_errors.load(std::memory_order_relaxed));
  Counter(&out, "shapcq_artifact_plans_loaded_total",
          "plans warm-started from persisted artifacts",
          metrics.artifact_plans_loaded.load(std::memory_order_relaxed));
  Counter(&out, "shapcq_artifact_circuits_loaded_total",
          "circuits warm-started from persisted artifacts",
          metrics.artifact_circuits_loaded.load(std::memory_order_relaxed));
  Counter(&out, "shapcq_artifact_entries_skipped_total",
          "persisted entries rejected by per-entry validation",
          metrics.artifact_entries_skipped.load(std::memory_order_relaxed));
  Counter(&out, "shapcq_artifact_bytes_loaded_total",
          "artifact bytes read at warm start",
          metrics.artifact_bytes_loaded.load(std::memory_order_relaxed));
  Counter(&out, "shapcq_artifact_bytes_persisted_total",
          "artifact bytes written by snapshots",
          metrics.artifact_bytes_persisted.load(std::memory_order_relaxed));
  Counter(&out, "shapcq_artifact_snapshots_total",
          "successful artifact snapshots (shutdown and SIGHUP)",
          metrics.artifact_snapshots.load(std::memory_order_relaxed));

  // Lineage-circuit telemetry (process-wide monotone counters).
  Counter(&out, "shapcq_lineage_circuits_compiled_total",
          "lineage circuits compiled", lineage.circuits_compiled);
  Counter(&out, "shapcq_lineage_circuit_nodes_total",
          "total nodes across compiled circuits", lineage.circuit_nodes);
  Counter(&out, "shapcq_lineage_cache_lookups_total",
          "compiler formula-cache lookups", lineage.cache_lookups);
  Counter(&out, "shapcq_lineage_cache_hits_total",
          "compiler formula-cache hits", lineage.cache_hits);
  Counter(&out, "shapcq_lineage_budget_fallbacks_total",
          "compilations aborted by the node budget",
          lineage.budget_fallbacks);

  // Latency histograms + quantile gauges.
  LatencyHistogram::Snapshot queue_snap = metrics.queue_wait.snapshot();
  LatencyHistogram::Snapshot solve_snap = metrics.solve.snapshot();
  LatencyHistogram::Snapshot total_snap = metrics.total.snapshot();
  Histogram(&out, "shapcq_queue_wait_seconds",
            "admission to worker dequeue", queue_snap);
  Histogram(&out, "shapcq_solve_seconds", "solver wall time", solve_snap);
  Histogram(&out, "shapcq_request_latency_seconds",
            "admission to response written", total_snap);
  QuantileGauges(&out, "shapcq_request_latency", total_snap);
  QuantileGauges(&out, "shapcq_solve", solve_snap);

  // Per-stage latency histograms from request traces (obs/trace.h). One
  // metric family, one {stage=...} label per span-site name; absent
  // entirely while tracing is off.
  std::map<std::string, LatencyHistogram::Snapshot> stages =
      metrics.StageMix();
  if (!stages.empty()) {
    Line(&out, "# HELP shapcq_stage_seconds "
               "per-request stage latency from traces");
    Line(&out, "# TYPE shapcq_stage_seconds histogram");
    for (const auto& [stage, snap] : stages) {
      const std::string label = EscapeLabel(stage);
      uint64_t cumulative = 0;
      for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
        cumulative += snap.counts[static_cast<size_t>(b)];
        if (b == LatencyHistogram::kBuckets - 1) {
          Line(&out,
               "shapcq_stage_seconds_bucket{stage=\"%s\",le=\"+Inf\"} %" PRIu64,
               label.c_str(), cumulative);
        } else {
          double le =
              static_cast<double>(LatencyHistogram::BucketUpperMicros(b)) /
              1e6;
          Line(&out,
               "shapcq_stage_seconds_bucket{stage=\"%s\",le=\"%.9g\"} %" PRIu64,
               label.c_str(), le, cumulative);
        }
      }
      Line(&out, "shapcq_stage_seconds_sum{stage=\"%s\"} %.9g", label.c_str(),
           static_cast<double>(snap.sum_micros) / 1e6);
      Line(&out, "shapcq_stage_seconds_count{stage=\"%s\"} %" PRIu64,
           label.c_str(), snap.count);
    }
  }

  return out;
}

}  // namespace shapcq
