#include "shapcq/serve/protocol.h"

#include <utility>

#include "shapcq/agg/spec.h"
#include "shapcq/query/parser.h"
#include "shapcq/serve/json.h"

namespace shapcq {

namespace {

void WriteSolveFields(const SolveRequest& request, JsonWriter* w) {
  w->Uint("id", request.id)
      .Str("tenant", request.tenant)
      .Str("query", request.query)
      .Str("agg", request.agg)
      .Str("tau", request.tau)
      .Str("score", request.score)
      .Str("method", request.method)
      .Int("threads", request.threads)
      .Int("samples", request.samples)
      .Uint("seed", request.seed)
      .Int("deadline_ms", request.deadline_ms);
  if (request.trace) w->Bool("trace", true);
}

}  // namespace

StatusOr<RequestEnvelope> ParseRequestLine(const std::string& line) {
  StatusOr<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) return parsed.status();
  if (parsed->kind != JsonValue::Kind::kObject) {
    return InvalidArgumentError("request must be a JSON object");
  }
  const JsonValue& root = *parsed;

  RequestEnvelope envelope;
  std::string op = root.GetString("op", "solve");
  if (op == "solve") {
    envelope.op = RequestEnvelope::Op::kSolve;
    SolveRequest& solve = envelope.solve;
    solve.id = root.GetUint64("id", 0);
    solve.tenant = root.GetString("tenant");
    solve.query = root.GetString("query");
    solve.agg = root.GetString("agg", solve.agg);
    solve.tau = root.GetString("tau", solve.tau);
    solve.score = root.GetString("score", solve.score);
    solve.method = root.GetString("method", solve.method);
    solve.threads =
        static_cast<int>(root.GetInt64("threads", solve.threads));
    solve.samples = root.GetInt64("samples", solve.samples);
    solve.seed = root.GetUint64("seed", solve.seed);
    solve.deadline_ms = root.GetInt64("deadline_ms", 0);
    solve.trace = root.GetBool("trace");
    envelope.id = solve.id;
    if (solve.query.empty()) {
      return InvalidArgumentError("solve request needs a \"query\"");
    }
    if (solve.tenant.empty()) {
      return InvalidArgumentError("solve request needs a \"tenant\"");
    }
    if (solve.threads < 0 || solve.threads > 4096) {
      return InvalidArgumentError("threads must be in [0, 4096]");
    }
    if (solve.samples < 1 || solve.samples > int64_t{1} << 32) {
      return InvalidArgumentError("samples must be in [1, 2^32]");
    }
    if (solve.deadline_ms < 0) {
      return InvalidArgumentError("deadline_ms must be >= 0");
    }
    return envelope;
  }
  envelope.id = root.GetUint64("id", 0);
  if (op == "load_tenant") {
    envelope.op = RequestEnvelope::Op::kLoadTenant;
    envelope.tenant = root.GetString("tenant");
    envelope.db_text = root.GetString("db");
    if (envelope.tenant.empty()) {
      return InvalidArgumentError("load_tenant needs a \"tenant\"");
    }
    return envelope;
  }
  if (op == "insert_fact" || op == "delete_fact") {
    envelope.op = op == "insert_fact" ? RequestEnvelope::Op::kInsertFact
                                      : RequestEnvelope::Op::kDeleteFact;
    envelope.tenant = root.GetString("tenant");
    envelope.fact = root.GetString("fact");
    envelope.fact_id = root.GetInt64("fact_id", -1);
    envelope.dirty_query = root.GetString("query");
    if (envelope.tenant.empty()) {
      return InvalidArgumentError(op + " needs a \"tenant\"");
    }
    if (envelope.op == RequestEnvelope::Op::kInsertFact &&
        envelope.fact.empty()) {
      return InvalidArgumentError("insert_fact needs a \"fact\"");
    }
    if (envelope.op == RequestEnvelope::Op::kDeleteFact &&
        envelope.fact.empty() && envelope.fact_id < 0) {
      return InvalidArgumentError(
          "delete_fact needs a \"fact\" or a \"fact_id\"");
    }
    return envelope;
  }
  if (op == "ping") {
    envelope.op = RequestEnvelope::Op::kPing;
    return envelope;
  }
  if (op == "metrics") {
    envelope.op = RequestEnvelope::Op::kMetrics;
    return envelope;
  }
  return InvalidArgumentError("unknown op: " + op);
}

std::string SerializeSolveRequest(const SolveRequest& request) {
  JsonWriter w;
  w.BeginObject().Str("op", "solve");
  WriteSolveFields(request, &w);
  w.EndObject();
  return w.TakeString();
}

std::string SerializeLoadTenant(uint64_t id, const std::string& tenant,
                                const std::string& db_text) {
  JsonWriter w;
  w.BeginObject()
      .Str("op", "load_tenant")
      .Uint("id", id)
      .Str("tenant", tenant)
      .Str("db", db_text)
      .EndObject();
  return w.TakeString();
}

namespace {

std::string SerializeMutation(const char* op, uint64_t id,
                              const std::string& tenant,
                              const std::string& fact,
                              const std::string& dirty_query) {
  JsonWriter w;
  w.BeginObject()
      .Str("op", op)
      .Uint("id", id)
      .Str("tenant", tenant)
      .Str("fact", fact);
  if (!dirty_query.empty()) w.Str("query", dirty_query);
  w.EndObject();
  return w.TakeString();
}

}  // namespace

std::string SerializeInsertFact(uint64_t id, const std::string& tenant,
                                const std::string& fact,
                                const std::string& dirty_query) {
  return SerializeMutation("insert_fact", id, tenant, fact, dirty_query);
}

std::string SerializeDeleteFact(uint64_t id, const std::string& tenant,
                                const std::string& fact,
                                const std::string& dirty_query) {
  return SerializeMutation("delete_fact", id, tenant, fact, dirty_query);
}

std::string SerializePing(uint64_t id) {
  JsonWriter w;
  w.BeginObject().Str("op", "ping").Uint("id", id).EndObject();
  return w.TakeString();
}

std::string SerializeMetricsRequest(uint64_t id) {
  JsonWriter w;
  w.BeginObject().Str("op", "metrics").Uint("id", id).EndObject();
  return w.TakeString();
}

StatusOr<AggregateQuery> BuildAggregateQuery(const SolveRequest& request) {
  StatusOr<ConjunctiveQuery> query = ParseQuery(request.query);
  if (!query.ok()) return query.status();
  StatusOr<AggregateFunction> alpha = ParseAggregateSpec(request.agg);
  if (!alpha.ok()) return alpha.status();
  StatusOr<ValueFunctionPtr> tau = ParseTauSpec(request.tau);
  if (!tau.ok()) return tau.status();
  return AggregateQuery{std::move(query).value(), std::move(tau).value(),
                        std::move(alpha).value()};
}

StatusOr<SolverOptions> BuildSolverOptions(const SolveRequest& request) {
  SolverOptions options;
  if (request.score == "banzhaf") {
    options.score = ScoreKind::kBanzhaf;
  } else if (request.score != "shapley") {
    return InvalidArgumentError("unknown score: " + request.score);
  }
  if (request.method == "auto") {
    options.method = SolveMethod::kAuto;
  } else if (request.method == "exact") {
    options.method = SolveMethod::kExactOnly;
  } else if (request.method == "brute") {
    options.method = SolveMethod::kBruteForce;
  } else if (request.method == "mc") {
    options.method = SolveMethod::kMonteCarlo;
  } else {
    return InvalidArgumentError("unknown method: " + request.method);
  }
  options.num_threads = request.threads;
  options.monte_carlo.num_samples = request.samples;
  options.monte_carlo.seed = request.seed;
  return options;
}

std::string SerializeResponse(const SolveResponse& response) {
  JsonWriter w;
  w.BeginObject().Uint("id", response.id).Str("status", response.status);
  if (response.status != "ok") {
    w.Str("code", response.code).Str("error", response.error);
    w.EndObject();
    return w.TakeString();
  }
  if (response.pong) {
    w.Bool("pong", true).EndObject();
    return w.TakeString();
  }
  if (!response.metrics.empty()) {
    w.Str("metrics", response.metrics).EndObject();
    return w.TakeString();
  }
  if (response.mutation) {
    w.Bool("mutation", true)
        .Int("fact_id", response.fact_id)
        .Uint("epoch", response.epoch)
        .Int("tombstones", response.tombstones);
    if (response.dirty_answers >= 0) {
      w.Int("dirty_answers", response.dirty_answers);
    }
    if (response.compacted) w.Bool("compacted", true);
    w.EndObject();
    return w.TakeString();
  }
  w.Bool("degraded", response.degraded)
      .Bool("plan_cache_hit", response.plan_cache_hit)
      .Str("fingerprint", response.fingerprint)
      .Num("queue_ms", response.queue_ms)
      .Num("solve_ms", response.solve_ms);
  w.BeginArray("results");
  for (const FactScore& fact : response.results) {
    w.BeginObjectInArray()
        .Int("fact", fact.fact)
        .Str("text", fact.fact_text)
        .Bool("exact", fact.exact)
        .Str("algorithm", fact.algorithm);
    if (fact.exact) {
      w.Str("score", fact.exact_value);
    } else {
      w.Num("std_error", fact.std_error).Int("samples", fact.samples);
    }
    w.Num("value", fact.value);
    w.EndObject();
  }
  w.EndArray();
  if (!response.footer.empty()) w.Str("footer", response.footer);
  if (!response.trace_id.empty()) w.Str("trace_id", response.trace_id);
  if (!response.explain.empty()) w.Str("explain", response.explain);
  if (!response.trace.empty()) w.Str("trace", response.trace);
  w.EndObject();
  return w.TakeString();
}

StatusOr<SolveResponse> ParseResponseLine(const std::string& line) {
  StatusOr<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) return parsed.status();
  if (parsed->kind != JsonValue::Kind::kObject) {
    return InvalidArgumentError("response must be a JSON object");
  }
  const JsonValue& root = *parsed;
  SolveResponse response;
  response.id = root.GetUint64("id", 0);
  response.status = root.GetString("status");
  if (response.status.empty()) {
    return InvalidArgumentError("response needs a \"status\"");
  }
  response.code = root.GetString("code");
  response.error = root.GetString("error");
  response.degraded = root.GetBool("degraded");
  response.plan_cache_hit = root.GetBool("plan_cache_hit");
  response.fingerprint = root.GetString("fingerprint");
  response.queue_ms = root.GetNumber("queue_ms");
  response.solve_ms = root.GetNumber("solve_ms");
  response.footer = root.GetString("footer");
  response.metrics = root.GetString("metrics");
  response.pong = root.GetBool("pong");
  response.mutation = root.GetBool("mutation");
  response.fact_id = root.GetInt64("fact_id", -1);
  response.epoch = root.GetUint64("epoch", 0);
  response.tombstones = root.GetInt64("tombstones", 0);
  response.dirty_answers = root.GetInt64("dirty_answers", -1);
  response.compacted = root.GetBool("compacted");
  response.trace_id = root.GetString("trace_id");
  response.explain = root.GetString("explain");
  response.trace = root.GetString("trace");
  const JsonValue* results = root.Find("results");
  if (results != nullptr) {
    if (results->kind != JsonValue::Kind::kArray) {
      return InvalidArgumentError("\"results\" must be an array");
    }
    response.results.reserve(results->array.size());
    for (const JsonValue& entry : results->array) {
      if (entry.kind != JsonValue::Kind::kObject) {
        return InvalidArgumentError("result entries must be objects");
      }
      FactScore fact;
      fact.fact = static_cast<FactId>(entry.GetInt64("fact", -1));
      fact.fact_text = entry.GetString("text");
      fact.exact = entry.GetBool("exact");
      fact.exact_value = entry.GetString("score");
      fact.value = entry.GetNumber("value");
      fact.algorithm = entry.GetString("algorithm");
      fact.std_error = entry.GetNumber("std_error");
      fact.samples = entry.GetInt64("samples");
      response.results.push_back(std::move(fact));
    }
  }
  return response;
}

void FillResults(const Database& db,
                 const std::vector<std::pair<FactId, SolveResult>>& results,
                 SolveResponse* response) {
  response->results.clear();
  response->results.reserve(results.size());
  for (const auto& [fact_id, result] : results) {
    FactScore fact;
    fact.fact = fact_id;
    fact.fact_text = db.fact(fact_id).ToString();
    fact.exact = result.is_exact;
    if (result.is_exact) fact.exact_value = result.exact.ToString();
    fact.value = result.approximation;
    fact.algorithm = result.algorithm;
    fact.std_error = result.std_error;
    fact.samples = result.samples;
    response->results.push_back(std::move(fact));
  }
}

}  // namespace shapcq
