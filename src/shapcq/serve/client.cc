#include "shapcq/serve/client.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace shapcq {

namespace {

StatusOr<int> ConnectLoopback(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return InternalError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return InternalError("connect(127.0.0.1:" + std::to_string(port) +
                         ") failed: " + std::strerror(errno));
  }
  return fd;
}

bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

StatusOr<LineClient> LineClient::Connect(int port) {
  StatusOr<int> fd = ConnectLoopback(port);
  if (!fd.ok()) return fd.status();
  return LineClient(*fd);
}

LineClient::~LineClient() { Close(); }

LineClient::LineClient(LineClient&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

LineClient& LineClient::operator=(LineClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

void LineClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status LineClient::SendLine(const std::string& line) {
  if (fd_ < 0) return FailedPreconditionError("client not connected");
  std::string framed = line;
  framed.push_back('\n');
  if (!SendAll(fd_, framed.data(), framed.size())) {
    return InternalError("send failed");
  }
  return Status::Ok();
}

StatusOr<std::string> LineClient::ReadLine() {
  if (fd_ < 0) return FailedPreconditionError("client not connected");
  while (true) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return InternalError("connection closed mid-read");
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

StatusOr<std::string> LineClient::RoundTrip(const std::string& line) {
  Status sent = SendLine(line);
  if (!sent.ok()) return sent;
  return ReadLine();
}

StatusOr<std::string> HttpGet(int port, const std::string& path) {
  StatusOr<int> fd = ConnectLoopback(port);
  if (!fd.ok()) return fd.status();
  std::string request = "GET " + path +
                        " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                        "Connection: close\r\n\r\n";
  if (!SendAll(*fd, request.data(), request.size())) {
    ::close(*fd);
    return InternalError("send failed");
  }
  std::string reply;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(*fd, chunk, sizeof(chunk), 0)) > 0) {
    reply.append(chunk, static_cast<size_t>(n));
  }
  ::close(*fd);
  if (reply.rfind("HTTP/1.1 200", 0) != 0) {
    std::string status_line = reply.substr(0, reply.find('\r'));
    return InternalError("GET " + path + " failed: " +
                         (status_line.empty() ? "no response" : status_line));
  }
  size_t body = reply.find("\r\n\r\n");
  if (body == std::string::npos) {
    return InternalError("malformed HTTP response");
  }
  return reply.substr(body + 4);
}

}  // namespace shapcq
