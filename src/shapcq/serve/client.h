// Minimal blocking client for the shapcqd wire protocol.
//
// LineClient speaks the line-delimited JSON protocol over loopback TCP:
// SendLine writes one request line, ReadLine blocks for one response
// line, RoundTrip does both. Used by the daemon smoke test, serve_test,
// and bench_daemon's driver threads — production clients can be written
// in any language that can open a socket and print JSON.

#ifndef SHAPCQ_SERVE_CLIENT_H_
#define SHAPCQ_SERVE_CLIENT_H_

#include <string>

#include "shapcq/util/status.h"

namespace shapcq {

class LineClient {
 public:
  // Connects to 127.0.0.1:port.
  static StatusOr<LineClient> Connect(int port);
  ~LineClient();

  LineClient(LineClient&& other) noexcept;
  LineClient& operator=(LineClient&& other) noexcept;
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  // Writes `line` plus a trailing newline.
  Status SendLine(const std::string& line);
  // Blocks until one full line arrives (the newline is stripped).
  StatusOr<std::string> ReadLine();
  StatusOr<std::string> RoundTrip(const std::string& line);

  void Close();

 private:
  explicit LineClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;  // bytes past the last returned line
};

// One HTTP/1.1 GET to 127.0.0.1:port; returns the response body (used to
// scrape /metrics in tests and benches). The status line must be 200.
StatusOr<std::string> HttpGet(int port, const std::string& path);

}  // namespace shapcq

#endif  // SHAPCQ_SERVE_CLIENT_H_
