#include "shapcq/serve/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "shapcq/data/db_io.h"
#include "shapcq/lineage/circuit_cache.h"
#include "shapcq/lineage/engine.h"
#include "shapcq/obs/log.h"
#include "shapcq/persist/artifact.h"
#include "shapcq/query/evaluator.h"
#include "shapcq/query/parser.h"
#include "shapcq/serve/json.h"
#include "shapcq/shapley/plan.h"
#include "shapcq/shapley/report.h"
#include "shapcq/shapley/session.h"
#include "shapcq/util/clock.h"

namespace shapcq {

namespace {

// A request line (or HTTP header block) larger than this is hostile.
constexpr size_t kMaxLineBytes = 4u << 20;

// Binds a loopback listener; returns the fd and writes the bound port.
StatusOr<int> MakeListener(int port, int* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return InternalError("socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return InternalError("bind(127.0.0.1:" + std::to_string(port) +
                         ") failed: " + std::strerror(errno));
  }
  if (::listen(fd, 128) != 0) {
    ::close(fd);
    return InternalError("listen() failed");
  }
  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) != 0) {
    ::close(fd);
    return InternalError("getsockname() failed");
  }
  *bound_port = ntohs(actual.sin_port);
  return fd;
}

bool SendAll(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

void CloseListener(std::atomic<int>* fd) {
  int got = fd->exchange(-1);
  if (got >= 0) {
    ::shutdown(got, SHUT_RDWR);  // unblocks a thread parked in accept()
    ::close(got);
  }
}

}  // namespace

AttributionServer::AttributionServer(ServerOptions options)
    : options_(std::move(options)),
      admission_(options_.limits),
      flight_recorder_(options_.flight_slowest_capacity,
                       options_.flight_incident_capacity) {}

AttributionServer::~AttributionServer() { Stop(); }

Status AttributionServer::Start() {
  if (running_.load()) return FailedPreconditionError("already started");

  std::unique_ptr<JournalWriter> journal;
  if (!options_.journal_path.empty()) {
    StatusOr<std::unique_ptr<JournalWriter>> opened = JournalWriter::Open(
        options_.journal_path, options_.journal_max_segment_bytes);
    if (!opened.ok()) return opened.status();
    journal = std::move(opened).value();
  }
  StatusOr<int> listener = MakeListener(options_.port, &port_);
  if (!listener.ok()) return listener.status();
  int metrics_fd = -1;
  if (options_.metrics_port >= 0) {
    StatusOr<int> mfd = MakeListener(options_.metrics_port, &metrics_port_);
    if (!mfd.ok()) {
      ::close(*listener);
      return mfd.status();
    }
    metrics_fd = *mfd;
  }

  LoadArtifacts();

  journal_ = std::move(journal);
  listen_fd_ = *listener;
  metrics_fd_ = metrics_fd;
  running_.store(true);
  int workers = options_.worker_threads > 0 ? options_.worker_threads : 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  if (metrics_fd_ >= 0) {
    metrics_thread_ = std::thread([this] { MetricsLoop(); });
  }
  return Status::Ok();
}

void AttributionServer::Stop() {
  if (!running_.exchange(false)) return;

  CloseListener(&listen_fd_);
  CloseListener(&metrics_fd_);
  if (acceptor_.joinable()) acceptor_.join();
  if (metrics_thread_.joinable()) metrics_thread_.join();

  // Stop the readers first, so no new work arrives once the workers exit.
  std::vector<ConnectionHandle> handles;
  {
    std::lock_guard<std::mutex> lock(connections_mu_);
    handles.swap(connections_);
  }
  for (const ConnectionHandle& handle : handles) {
    Connection& connection = *handle.connection;
    std::lock_guard<std::mutex> lock(connection.write_mu);
    connection.closed.store(true);
    // shutdown (not close) unblocks a reader parked in recv(); the
    // reader closes the fd itself on the way out.
    if (connection.fd >= 0) ::shutdown(connection.fd, SHUT_RDWR);
  }
  for (ConnectionHandle& handle : handles) handle.thread.join();

  // Workers drain what is already queued, then exit.
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();

  // Backstop for anything enqueued after the workers left.
  std::deque<Job> leftover;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    leftover.swap(queue_);
  }
  for (Job& job : leftover) {
    metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
    metrics_.TenantQueueDelta(job.request.tenant, -1);
    admission_.OnDequeue(job.request.tenant);
    admission_.OnComplete(job.request.tenant);
    metrics_.requests_error.fetch_add(1, std::memory_order_relaxed);
    metrics_.CountTenantRequest(job.request.tenant,
                                DaemonMetrics::Outcome::kError);
  }

  if (journal_ != nullptr) journal_->Close();

  // Snapshot the warm state last, after every worker that could still be
  // inserting circuits has exited.
  SaveArtifacts();
}

void AttributionServer::LoadArtifacts() {
  if (options_.artifact_dir.empty()) return;
  ArtifactReader reader(options_.artifact_dir);
  StatusOr<ArtifactLoadStats> plans = reader.ReadPlans(&PlanCache::Global());
  if (plans.ok()) {
    metrics_.artifact_plans_loaded.fetch_add(plans->plans,
                                             std::memory_order_relaxed);
    metrics_.artifact_entries_skipped.fetch_add(plans->skipped,
                                                std::memory_order_relaxed);
    metrics_.artifact_bytes_loaded.fetch_add(plans->bytes,
                                             std::memory_order_relaxed);
  } else {
    metrics_.artifact_load_errors.fetch_add(1, std::memory_order_relaxed);
  }
  StatusOr<ArtifactLoadStats> circuits =
      reader.ReadCircuits(&CircuitCache::Global());
  if (circuits.ok()) {
    metrics_.artifact_circuits_loaded.fetch_add(circuits->circuits,
                                                std::memory_order_relaxed);
    metrics_.artifact_entries_skipped.fetch_add(circuits->skipped,
                                                std::memory_order_relaxed);
    metrics_.artifact_bytes_loaded.fetch_add(circuits->bytes,
                                             std::memory_order_relaxed);
  } else {
    metrics_.artifact_load_errors.fetch_add(1, std::memory_order_relaxed);
  }
}

Status AttributionServer::SaveArtifacts() {
  if (options_.artifact_dir.empty()) return Status::Ok();
  ArtifactWriter writer(options_.artifact_dir);
  Status failure = Status::Ok();
  StatusOr<ArtifactWriteStats> plans =
      writer.WritePlans(PlanCache::Global().Snapshot());
  if (plans.ok()) {
    metrics_.artifact_bytes_persisted.fetch_add(plans->bytes,
                                                std::memory_order_relaxed);
  } else {
    metrics_.artifact_save_errors.fetch_add(1, std::memory_order_relaxed);
    failure = plans.status();
  }
  StatusOr<ArtifactWriteStats> circuits =
      writer.WriteCircuits(CircuitCache::Global().Snapshot());
  if (circuits.ok()) {
    metrics_.artifact_bytes_persisted.fetch_add(circuits->bytes,
                                                std::memory_order_relaxed);
  } else {
    metrics_.artifact_save_errors.fetch_add(1, std::memory_order_relaxed);
    failure = circuits.status();
  }
  if (failure.ok()) {
    metrics_.artifact_snapshots.fetch_add(1, std::memory_order_relaxed);
  }
  return failure;
}

void AttributionServer::RegisterTenant(const std::string& name, Database db) {
  auto state = std::make_shared<TenantState>();
  state->db = std::move(db);
  metrics_.SetTenantStaleness(
      name, state->db.epoch(),
      static_cast<uint64_t>(state->db.num_facts() - state->db.num_live()));
  std::lock_guard<std::mutex> lock(tenants_mu_);
  tenants_[name] = std::move(state);
}

std::shared_ptr<AttributionServer::TenantState> AttributionServer::FindTenant(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second;
}

std::string AttributionServer::MetricsText() const {
  return RenderPrometheus(metrics_, PlanCache::Global().stats(),
                          CircuitCache::Global().stats(),
                          LineageStats::Global().Snapshot());
}

uint64_t AttributionServer::journal_records_written() const {
  return journal_ == nullptr ? 0 : journal_->records_written();
}

void AttributionServer::AcceptLoop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_.load(), nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) return;
      if (errno == EINTR) continue;
      // EMFILE/ENFILE and friends: reaping finished readers releases
      // their fds, and backing off keeps a persistent failure (fd
      // exhaustion) from busy-spinning this thread at 100% CPU.
      metrics_.accept_errors.fetch_add(1, std::memory_order_relaxed);
      ReapFinishedConnections();
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      continue;
    }
    ReapFinishedConnections();
    metrics_.connections_opened.fetch_add(1, std::memory_order_relaxed);
    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    std::lock_guard<std::mutex> lock(connections_mu_);
    if (!running_.load()) {
      ::close(fd);
      return;
    }
    connections_.push_back(ConnectionHandle{
        connection, std::thread([this, connection] {
          ConnectionLoop(connection);
        })});
  }
}

void AttributionServer::ReapFinishedConnections() {
  std::lock_guard<std::mutex> lock(connections_mu_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->connection->done.load(std::memory_order_acquire)) {
      it->thread.join();  // already exited; returns immediately
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t AttributionServer::live_connections() {
  ReapFinishedConnections();
  std::lock_guard<std::mutex> lock(connections_mu_);
  return connections_.size();
}

void AttributionServer::ConnectionLoop(std::shared_ptr<Connection> connection) {
  std::string buffer;
  char chunk[4096];
  while (running_.load()) {
    ssize_t n = ::recv(connection->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    size_t newline;
    while ((newline = buffer.find('\n', start)) != std::string::npos) {
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) HandleLine(connection, line);
    }
    buffer.erase(0, start);
    if (buffer.size() > kMaxLineBytes) {
      WriteError(connection, 0,
                 InvalidArgumentError("request line exceeds 4 MiB"));
      break;
    }
  }
  // The reader owns the fd: close it here (not in Stop) so a
  // long-running daemon reclaims one fd per disconnect instead of
  // accumulating them. write_mu excludes a worker mid-send.
  {
    std::lock_guard<std::mutex> lock(connection->write_mu);
    connection->closed.store(true);
    if (connection->fd >= 0) {
      ::close(connection->fd);
      connection->fd = -1;
    }
  }
  metrics_.connections_closed.fetch_add(1, std::memory_order_relaxed);
  // Publish reapability last: after this store the acceptor may join
  // this thread and erase the handle at any moment.
  connection->done.store(true, std::memory_order_release);
}

void AttributionServer::HandleLine(
    const std::shared_ptr<Connection>& connection, const std::string& line) {
  StatusOr<RequestEnvelope> parsed = ParseRequestLine(line);
  if (!parsed.ok()) {
    metrics_.requests_error.fetch_add(1, std::memory_order_relaxed);
    WriteError(connection, 0, parsed.status());
    return;
  }
  RequestEnvelope& envelope = *parsed;
  switch (envelope.op) {
    case RequestEnvelope::Op::kPing: {
      SolveResponse response;
      response.id = envelope.id;
      response.status = "ok";
      response.pong = true;
      WriteResponse(connection, response);
      return;
    }
    case RequestEnvelope::Op::kMetrics: {
      SolveResponse response;
      response.id = envelope.id;
      response.status = "ok";
      response.metrics = MetricsText();
      WriteResponse(connection, response);
      return;
    }
    case RequestEnvelope::Op::kLoadTenant: {
      if (!options_.allow_load_tenant) {
        WriteError(connection, envelope.id,
                   FailedPreconditionError(
                       "load_tenant is disabled on this server"));
        return;
      }
      StatusOr<Database> db = ParseDatabase(envelope.db_text);
      if (!db.ok()) {
        metrics_.requests_error.fetch_add(1, std::memory_order_relaxed);
        WriteError(connection, envelope.id, db.status());
        return;
      }
      RegisterTenant(envelope.tenant, std::move(db).value());
      SolveResponse response;
      response.id = envelope.id;
      response.status = "ok";
      WriteResponse(connection, response);
      return;
    }
    case RequestEnvelope::Op::kInsertFact:
    case RequestEnvelope::Op::kDeleteFact:
      HandleMutation(connection, envelope);
      return;
    case RequestEnvelope::Op::kSolve:
      EnqueueSolve(connection, std::move(envelope.solve));
      return;
  }
}

void AttributionServer::HandleMutation(
    const std::shared_ptr<Connection>& connection,
    const RequestEnvelope& envelope) {
  const bool is_insert = envelope.op == RequestEnvelope::Op::kInsertFact;
  auto fail = [&](const Status& status) {
    metrics_.mutation_errors.fetch_add(1, std::memory_order_relaxed);
    WriteError(connection, envelope.id, status);
  };
  if (!options_.allow_mutations) {
    fail(FailedPreconditionError("mutations are disabled on this server"));
    return;
  }
  std::shared_ptr<TenantState> tenant = FindTenant(envelope.tenant);
  if (tenant == nullptr) {
    fail(NotFoundError("unknown tenant '" + envelope.tenant +
                       "'; register it with op load_tenant"));
    return;
  }
  // Parse the optional dirty-set probe before taking the lock.
  std::optional<ConjunctiveQuery> probe;
  if (!envelope.dirty_query.empty()) {
    StatusOr<ConjunctiveQuery> parsed = ParseQuery(envelope.dirty_query);
    if (!parsed.ok()) {
      fail(parsed.status());
      return;
    }
    probe.emplace(std::move(parsed).value());
  }
  std::optional<ParsedFact> parsed_fact;
  if (!envelope.fact.empty()) {
    StatusOr<ParsedFact> parsed = ParseFactLine(envelope.fact);
    if (!parsed.ok()) {
      fail(parsed.status());
      return;
    }
    parsed_fact.emplace(std::move(parsed).value());
  }

  SolveResponse response;
  response.id = envelope.id;
  response.status = "ok";
  response.mutation = true;

  // Applied synchronously under the tenant's exclusive lock: solves in
  // flight (shared holders) finish against the pre-mutation state, the
  // journal append below happens inside the lock so journal order IS
  // application order, and the response observes the post-mutation epoch.
  std::unique_lock<std::shared_mutex> lock(tenant->mu);
  Database& db = tenant->db;
  FactId fact_id = -1;
  std::string journal_fact;
  int64_t dirty = -1;
  if (is_insert) {
    StatusOr<FactId> inserted = db.InsertFact(
        parsed_fact->relation, parsed_fact->args, parsed_fact->endogenous);
    if (!inserted.ok()) {
      lock.unlock();
      fail(inserted.status());
      return;
    }
    fact_id = *inserted;
    journal_fact = (parsed_fact->endogenous ? "+" : "-") +
                   db.fact(fact_id).ToString();
    if (probe.has_value()) {
      dirty = static_cast<int64_t>(AnswersTouching(*probe, db, fact_id).size());
    }
    metrics_.mutations_insert.fetch_add(1, std::memory_order_relaxed);
  } else {
    if (envelope.fact_id >= 0) {
      fact_id = static_cast<FactId>(envelope.fact_id);
    } else {
      StatusOr<FactId> found =
          db.FindFact(parsed_fact->relation, parsed_fact->args);
      if (!found.ok()) {
        lock.unlock();
        fail(found.status());
        return;
      }
      fact_id = *found;
    }
    if (!db.live(fact_id)) {
      lock.unlock();
      fail(NotFoundError("fact id " + std::to_string(fact_id) +
                         " is not live"));
      return;
    }
    // Capture content and the dirty set BEFORE tombstoning: the pinned
    // join needs the fact live, and the journal names facts by content.
    journal_fact = db.fact(fact_id).ToString();
    if (probe.has_value()) {
      dirty = static_cast<int64_t>(AnswersTouching(*probe, db, fact_id).size());
    }
    Status deleted = db.DeleteFact(fact_id);
    if (!deleted.ok()) {
      lock.unlock();
      fail(deleted);
      return;
    }
    metrics_.mutations_delete.fetch_add(1, std::memory_order_relaxed);
  }

  int dead = db.num_facts() - db.num_live();
  if (options_.compact_min_tombstones > 0 &&
      dead >= options_.compact_min_tombstones && dead * 4 >= db.num_live()) {
    db.CompactTombstones();
    dead = db.num_facts() - db.num_live();
    response.compacted = true;
    metrics_.compactions.fetch_add(1, std::memory_order_relaxed);
  }

  if (journal_ != nullptr) {
    JournalRecord record;
    record.timestamp_ns = MonotonicNanos();
    record.op = is_insert ? JournalOp::kInsertFact : JournalOp::kDeleteFact;
    record.fact = journal_fact;
    record.trace_id = NextTraceId();
    record.request.id = envelope.id;
    record.request.tenant = envelope.tenant;
    record.request.query = envelope.dirty_query;
    if (journal_->Append(record).ok()) {
      metrics_.journal_records.fetch_add(1, std::memory_order_relaxed);
    } else {
      metrics_.journal_errors.fetch_add(1, std::memory_order_relaxed);
    }
  }

  response.fact_id = fact_id;
  response.epoch = db.epoch();
  response.tombstones = dead;
  response.dirty_answers = dirty;
  metrics_.SetTenantStaleness(envelope.tenant, db.epoch(),
                              static_cast<uint64_t>(dead));
  lock.unlock();

  if (dirty >= 0) {
    metrics_.dirty_answers_total.fetch_add(static_cast<uint64_t>(dirty),
                                           std::memory_order_relaxed);
    metrics_.dirty_answers_last.store(dirty, std::memory_order_relaxed);
  }
  WriteResponse(connection, response);
}

void AttributionServer::EnqueueSolve(
    const std::shared_ptr<Connection>& connection, SolveRequest request) {
  if (FindTenant(request.tenant) == nullptr) {
    metrics_.requests_error.fetch_add(1, std::memory_order_relaxed);
    WriteError(connection, request.id,
               NotFoundError("unknown tenant '" + request.tenant +
                             "'; register it with op load_tenant"));
    return;
  }
  StatusOr<AggregateQuery> query = BuildAggregateQuery(request);
  if (!query.ok()) {
    metrics_.requests_error.fetch_add(1, std::memory_order_relaxed);
    metrics_.CountTenantRequest(request.tenant,
                                DaemonMetrics::Outcome::kError);
    WriteError(connection, request.id, query.status());
    return;
  }
  StatusOr<SolverOptions> request_options = BuildSolverOptions(request);
  if (!request_options.ok()) {
    metrics_.requests_error.fetch_add(1, std::memory_order_relaxed);
    metrics_.CountTenantRequest(request.tenant,
                                DaemonMetrics::Outcome::kError);
    WriteError(connection, request.id, request_options.status());
    return;
  }
  // Overlay the per-request knobs on the server's base options.
  SolverOptions options = options_.solver;
  options.score = request_options->score;
  options.method = request_options->method;
  options.num_threads = request_options->num_threads;
  options.monte_carlo = request_options->monte_carlo;

  Status admitted = admission_.TryAdmit(request.tenant);
  if (!admitted.ok()) {
    metrics_.requests_rejected.fetch_add(1, std::memory_order_relaxed);
    metrics_.CountTenantRequest(request.tenant,
                                DaemonMetrics::Outcome::kRejected);
    WriteError(connection, request.id, admitted);
    return;
  }

  std::string fingerprint = PlanFingerprint(*query, options.score);
  uint64_t enqueued_ns = MonotonicNanos();
  // Every admitted request gets a trace id (the journal stamps it even at
  // trace level off); the span context itself is only allocated when the
  // server traces or the request asked for a trace.
  const uint64_t trace_id = NextTraceId();
  std::unique_ptr<TraceContext> trace;
  if (options_.trace_level != TraceLevel::kOff || request.trace) {
    trace = std::make_unique<TraceContext>(trace_id);
  }
  if (journal_ != nullptr) {
    JournalRecord record;
    record.timestamp_ns = enqueued_ns;
    record.fingerprint = fingerprint;
    record.request = request;
    record.trace_id = trace_id;
    if (journal_->Append(record).ok()) {
      metrics_.journal_records.fetch_add(1, std::memory_order_relaxed);
    } else {
      // The request is still served, but the journal is no longer a
      // complete trace of admitted traffic — surface that loudly so
      // replay-parity consumers can tell.
      metrics_.journal_errors.fetch_add(1, std::memory_order_relaxed);
    }
  }
  Job job{std::move(request),  std::move(query).value(),
          std::move(options),  std::move(fingerprint),
          enqueued_ns,         trace_id,
          std::move(trace),    connection};

  metrics_.queue_depth.fetch_add(1, std::memory_order_relaxed);
  metrics_.TenantQueueDelta(job.request.tenant, 1);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
}

void AttributionServer::WorkerLoop() {
  while (true) {
    std::optional<Job> job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return !queue_.empty() || !running_.load(); });
      if (queue_.empty()) return;  // only when stopping
      job.emplace(std::move(queue_.front()));
      queue_.pop_front();
    }
    metrics_.queue_depth.fetch_sub(1, std::memory_order_relaxed);
    metrics_.TenantQueueDelta(job->request.tenant, -1);
    RunJob(std::move(*job));
  }
}

void AttributionServer::RunJob(Job job) {
  admission_.OnDequeue(job.request.tenant);
  metrics_.in_flight.fetch_add(1, std::memory_order_relaxed);
  uint64_t dequeued_ns = MonotonicNanos();
  uint64_t queue_micros = (dequeued_ns - job.enqueued_ns) / 1000;
  metrics_.queue_wait.Record(queue_micros);
  // The worker owns the trace for the rest of the request (the queue
  // mutex published it); span sites below only ever see this borrowed
  // pointer on this thread.
  TraceContext* trace = job.trace.get();
  if (trace != nullptr) {
    trace->AddSpan("queue_wait", job.enqueued_ns, dequeued_ns);
  }
  if (options_.pre_solve_hook) options_.pre_solve_hook();

  SolveResponse response;
  response.id = job.request.id;
  response.queue_ms = static_cast<double>(queue_micros) / 1e3;
  response.fingerprint = job.fingerprint;

  std::shared_ptr<TenantState> tenant = FindTenant(job.request.tenant);
  Status failure;
  uint64_t solve_us = 0;
  if (tenant == nullptr) {
    failure = NotFoundError("tenant '" + job.request.tenant +
                            "' disappeared while queued");
  } else {
    // Shared lock for the whole plan+solve+render window: the session
    // borrows the tenant database, and mutations (exclusive holders)
    // wait rather than mutate under a running solve.
    std::shared_lock<std::shared_mutex> db_lock(tenant->mu);
    const Database& db = tenant->db;
    bool cache_hit = false;
    Span plan_span(trace, "plan");
    std::shared_ptr<const AttributionPlan> plan =
        PlanCache::Global().GetOrCompile(job.query, job.options.score,
                                         &cache_hit);
    plan_span.Annotate("cache", cache_hit ? "hit" : "miss");
    plan_span.End();
    response.plan_cache_hit = cache_hit;
    SolverSession session(plan, db);

    SolverOptions options = job.options;
    options.trace = trace;
    // Per-request circuit-cache attribution: the lineage shards add their
    // hit/miss traffic here, and it lands on this tenant's metric series.
    CircuitCacheCounters circuit_counters;
    options.lineage.cache_counters = &circuit_counters;
    bool degraded = false;
    std::string degrade_reason;
    if (job.request.deadline_ms > 0) {
      // The deadline is anchored at admission, so time spent queued
      // counts against it.
      uint64_t deadline_ns =
          job.enqueued_ns +
          static_cast<uint64_t>(job.request.deadline_ms) * 1000000u;
      if (MonotonicNanos() > deadline_ns) {
        // The deadline burned out in the queue: go straight to the
        // bounded estimate.
        options.method = SolveMethod::kMonteCarlo;
        degraded = true;
        degrade_reason = "deadline expired in queue";
      } else {
        options.cancelled = [deadline_ns] {
          return MonotonicNanos() > deadline_ns;
        };
      }
    }

    Span solve_span(trace, "solve");
    solve_span.Annotate("players", static_cast<int64_t>(db.num_endogenous()));
    solve_span.Annotate("hierarchy",
                        HierarchyClassName(session.classification()));
    solve_span.Annotate("method", job.request.method);
    LineageStatsSnapshot lineage_before = LineageStats::Global().Snapshot();
    uint64_t solve_start_ns = MonotonicNanos();
    StatusOr<std::vector<std::pair<FactId, SolveResult>>> results =
        session.ComputeAll(options);
    if (!results.ok() &&
        results.status().code() == StatusCode::kDeadlineExceeded) {
      degraded = true;
      degrade_reason = results.status().message();
      options.cancelled = nullptr;
      options.method = SolveMethod::kMonteCarlo;
      results = session.ComputeAll(options);
    }
    if (degraded) solve_span.Annotate("degrade_reason", degrade_reason);
    solve_span.End();
    uint64_t solve_micros = (MonotonicNanos() - solve_start_ns) / 1000;
    solve_us = solve_micros;
    metrics_.solve.Record(solve_micros);
    response.solve_ms = static_cast<double>(solve_micros) / 1e3;
    metrics_.AddTenantCircuitCache(
        job.request.tenant,
        circuit_counters.hits.load(std::memory_order_relaxed),
        circuit_counters.misses.load(std::memory_order_relaxed));

    if (results.ok()) {
      response.status = "ok";
      response.degraded = degraded;
      FillResults(db, *results, &response);
      LineageStatsSnapshot lineage = LineageStatsDelta(
          LineageStats::Global().Snapshot(), lineage_before);
      response.footer = FormatPlanProvenance(*plan, *results, cache_hit,
                                             &options, &lineage);
      std::unordered_map<std::string, uint64_t> mix;
      for (const auto& [fact, result] : *results) {
        (void)fact;
        ++mix[result.algorithm];
      }
      for (const auto& [engine, facts] : mix) {
        metrics_.CountEngineFacts(engine, facts);
      }
      if (degraded) {
        metrics_.requests_degraded.fetch_add(1, std::memory_order_relaxed);
      }
      metrics_.requests_ok.fetch_add(1, std::memory_order_relaxed);
    } else {
      failure = results.status();
    }
  }

  if (!failure.ok() || response.status != "ok") {
    metrics_.requests_error.fetch_add(1, std::memory_order_relaxed);
    metrics_.CountTenantRequest(job.request.tenant,
                                DaemonMetrics::Outcome::kError);
    response.status = "error";
    response.code = StatusCodeName(failure.code());
    response.error = failure.message();
  } else {
    metrics_.CountTenantRequest(job.request.tenant,
                                DaemonMetrics::Outcome::kOk);
  }
  const uint64_t total_micros = (MonotonicNanos() - job.enqueued_ns) / 1000;
  metrics_.total.Record(total_micros);
  const char* outcome = response.status == "ok"
                            ? (response.degraded ? "degraded" : "ok")
                            : "error";
  response.trace_id = TraceIdHex(job.trace_id);
  if (trace != nullptr) {
    for (const TraceSpan& span : trace->spans()) {
      metrics_.RecordStage(span.stage, span.duration_micros());
    }
    if (job.request.trace || options_.trace_level == TraceLevel::kFull) {
      response.explain = BuildEngineExplanation(*trace);
      response.trace = trace->RenderJson();
    }
    TraceRecord flight;
    flight.trace_id = job.trace_id;
    flight.tenant = job.request.tenant;
    flight.request_id = job.request.id;
    flight.outcome = outcome;
    flight.total_micros = total_micros;
    flight.json = trace->RenderJson();
    flight_recorder_.Record(std::move(flight));
  }
  if (LogEnabled(LogLevel::kInfo)) {
    LogLine(LogLevel::kInfo,
            "request trace=" + TraceIdHex(job.trace_id) + " tenant=" +
                job.request.tenant + " id=" + std::to_string(job.request.id) +
                " outcome=" + outcome + " total_us=" +
                std::to_string(total_micros) + " solve_us=" +
                std::to_string(solve_us));
  }
  WriteResponse(job.connection, response);
  metrics_.in_flight.fetch_sub(1, std::memory_order_relaxed);
  admission_.OnComplete(job.request.tenant);
}

void AttributionServer::WriteResponse(
    const std::shared_ptr<Connection>& connection,
    const SolveResponse& response) {
  std::string line = SerializeResponse(response);
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(connection->write_mu);
  if (connection->closed.load() || connection->fd < 0) return;
  if (!SendAll(connection->fd, line.data(), line.size())) {
    // shutdown (not close) so the reader parked in recv() wakes up and
    // closes the fd itself.
    connection->closed.store(true);
    ::shutdown(connection->fd, SHUT_RDWR);
  }
}

void AttributionServer::WriteError(
    const std::shared_ptr<Connection>& connection, uint64_t id,
    const Status& status) {
  SolveResponse response;
  response.id = id;
  response.status = "error";
  response.code = StatusCodeName(status.code());
  response.error = status.message();
  WriteResponse(connection, response);
}

void AttributionServer::MetricsLoop() {
  while (running_.load()) {
    int fd = ::accept(metrics_fd_.load(), nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) return;
      continue;
    }
    // One request per connection, curl/Prometheus style.
    std::string request;
    char chunk[2048];
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.size() < kMaxLineBytes) {
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      request.append(chunk, static_cast<size_t>(n));
      if (request.find('\n') != std::string::npos &&
          request.find("\r\n") == std::string::npos) {
        break;  // bare-LF client (nc): first line is enough
      }
    }
    std::string body;
    const char* status_line = "HTTP/1.1 404 Not Found\r\n";
    const char* content_type = "text/plain; version=0.0.4";
    if (request.rfind("GET /metrics", 0) == 0) {
      status_line = "HTTP/1.1 200 OK\r\n";
      body = MetricsText();
    } else if (request.rfind("GET /healthz", 0) == 0) {
      status_line = "HTTP/1.1 200 OK\r\n";
      body = "ok\n";
    } else if (request.rfind("GET /debug/traces", 0) == 0) {
      status_line = "HTTP/1.1 200 OK\r\n";
      content_type = "application/json";
      body = DebugTracesJson();
      body.push_back('\n');
    } else {
      body = "not found\n";
    }
    std::string reply = status_line;
    reply += "Content-Type: ";
    reply += content_type;
    reply += "\r\n";
    reply += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    reply += "Connection: close\r\n\r\n";
    reply += body;
    SendAll(fd, reply.data(), reply.size());
    ::close(fd);
  }
}

}  // namespace shapcq
