// Deterministic journal replay with bitwise result verification.
//
// A journal (serve/journal.h) is a trace of admitted daemon traffic.
// ReplayJournal re-executes every record against the same tenant
// databases two ways:
//
//   * warm — in journal order through one fresh PlanCache, the daemon's
//     serving configuration (compile once, execute many);
//   * cold — each record compiles its own AttributionPlan and runs a
//     plain SolverSession::ComputeAll, exactly what a direct CLI run of
//     the same query does (no cache anywhere).
//
// Both passes must produce bitwise-identical results: exact Rationals
// compare by value (exact arithmetic is order-independent), doubles and
// sampling telemetry compare bit-for-bit (per-fact Monte Carlo seeding
// makes estimates reproducible). Replay never applies deadlines — a
// record that degraded at serve time records method "mc" only if the
// client asked for it; degradation is a serving decision, not part of
// the journaled request — so replay answers "what were the true scores
// for this traffic", and parity failures localize to the cache/plan
// layer by construction. Fingerprints are re-derived and checked
// against the journaled ones (solve records only).
//
// Mutation records (insert_fact / delete_fact) replay by CONTENT: each
// pass keeps its own mutable copy of every touched tenant and applies
// the journaled fact line in journal order. Because FactIds are assigned
// by the same ascending-never-reused rule the daemon used (and deletes
// resolve the live fact by content), the replayed id space — and hence
// every subsequent solve — matches the daemon bitwise. Compactions are
// not journaled and need not be: they preserve ids and contents.
// Mutation records contribute an empty entry to `results`, keeping
// record indices aligned for harnesses that join on them.

#ifndef SHAPCQ_SERVE_REPLAY_H_
#define SHAPCQ_SERVE_REPLAY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "shapcq/data/database.h"
#include "shapcq/serve/journal.h"
#include "shapcq/shapley/session.h"
#include "shapcq/util/status.h"

namespace shapcq {

struct ReplayOptions {
  // Threads for each solve (0 = the record's own setting).
  int num_threads = 0;
  // Skip the per-record compile pass (saves time on huge journals).
  bool run_cold_pass = true;
  // Attach a TraceContext to every warm-pass solve and build its
  // engine-decision explanation (obs/trace.h) — what shapcq_replay
  // --explain prints. Tracing never changes results, so the bitwise
  // parity checks are unaffected.
  bool collect_explanations = false;
};

struct ReplayResult {
  uint64_t records = 0;
  double warm_ms = 0;  // wall time of the warm pass
  double cold_ms = 0;  // wall time of the cold pass (0 when skipped)
  uint64_t plan_cache_hits = 0;    // warm-pass cache hits
  uint64_t fingerprint_matches = 0;  // journaled == re-derived
  uint64_t mutations = 0;            // mutation records applied
  // Warm-pass results per record, in journal order — the reference the
  // other passes were compared against, and what external harnesses
  // (the daemon smoke test) compare daemon responses to.
  std::vector<std::vector<std::pair<FactId, SolveResult>>> results;
  // When collect_explanations: one engine-decision explanation per
  // record, aligned with `results` ("" for mutation records).
  std::vector<std::string> explanations;
};

// Replays `records` against `tenants` (name -> database; every tenant
// named by a record must be present). Returns INTERNAL naming the
// record, fact, and field on the first bitwise mismatch between passes,
// INVALID_ARGUMENT for a record that no longer parses, NOT_FOUND for a
// missing tenant.
StatusOr<ReplayResult> ReplayJournal(
    const std::vector<JournalRecord>& records,
    const std::map<std::string, std::shared_ptr<const Database>>& tenants,
    const ReplayOptions& options = {});

}  // namespace shapcq

#endif  // SHAPCQ_SERVE_REPLAY_H_
