// Minimal strict JSON for the serving protocol.
//
// The daemon speaks line-delimited JSON (serve/protocol.h); this is the
// small recursive value model + strict parser + escaping writer behind it.
// Deliberately tiny: objects keep insertion order in a flat vector (the
// protocol has a handful of keys per message), and numbers retain their
// raw source text so 64-bit integers (request ids, seeds) round-trip
// exactly instead of passing through a double.
//
// Distinct from bench/bench_util.h's JsonLine, which is a bench-only
// emitter living outside the library (it carries the counting operator
// new hook); the serving library cannot include bench headers.

#ifndef SHAPCQ_SERVE_JSON_H_
#define SHAPCQ_SERVE_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "shapcq/util/status.h"

namespace shapcq {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;        // numeric value (may lose 64-bit precision)
  std::string text;         // string payload, or the raw token of a number
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  // First member named `key`, or nullptr. Objects are small; linear scan.
  const JsonValue* Find(const std::string& key) const;

  // Typed accessors with defaults, for optional protocol fields. Integer
  // accessors parse the raw token, so full 64-bit values survive.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  int64_t GetInt64(const std::string& key, int64_t fallback = 0) const;
  uint64_t GetUint64(const std::string& key, uint64_t fallback = 0) const;
  double GetNumber(const std::string& key, double fallback = 0) const;
  bool GetBool(const std::string& key, bool fallback = false) const;
};

// Strict parse of one JSON document (the whole input, trailing whitespace
// allowed). INVALID_ARGUMENT with a byte offset on any deviation.
StatusOr<JsonValue> ParseJson(std::string_view text);

// `text` as a quoted JSON string: escapes quote, backslash, and control
// bytes (\uXXXX), mirroring the BENCH_JSON emitter's rules.
std::string JsonQuote(std::string_view text);

// Incremental writer for one JSON object or array. Purely syntactic — the
// caller opens/closes scopes in order; no validation beyond comma
// placement.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray(const char* key = nullptr);
  JsonWriter& EndArray();
  JsonWriter& BeginObjectInArray();

  JsonWriter& Str(const char* key, std::string_view value);
  JsonWriter& Int(const char* key, int64_t value);
  JsonWriter& Uint(const char* key, uint64_t value);
  JsonWriter& Num(const char* key, double value);  // non-finite -> null
  JsonWriter& Bool(const char* key, bool value);

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void Comma();
  void Key(const char* key);

  std::string out_;
  bool needs_comma_ = false;
};

}  // namespace shapcq

#endif  // SHAPCQ_SERVE_JSON_H_
