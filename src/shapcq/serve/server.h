// AttributionServer: the long-running concurrent attribution daemon.
//
// One process serves many tenants: each tenant is a named immutable
// Database, registered up front (RegisterTenant) or over the wire
// (op:"load_tenant"). Clients connect to a loopback TCP port and speak
// the line-delimited JSON protocol of serve/protocol.h; an optional
// second port serves GET /metrics in Prometheus text format.
//
// Request path:
//
//   reader thread (one per connection)
//     parse line -> resolve tenant -> build query/options
//     -> AdmissionController::TryAdmit   (reject: RESOURCE_EXHAUSTED now)
//     -> JournalWriter::Append           (accepted traffic is replayable)
//     -> push on the shared work queue
//   worker pool (worker_threads)
//     dequeue -> PlanCache::GetOrCompile -> SolverSession::ComputeAll
//     with options.cancelled wired to the request deadline; on
//     kDeadlineExceeded (or a deadline that expired in the queue) rerun
//     with method=kMonteCarlo — bounded by the sample budget and
//     deterministic via per-fact seeding — and mark the response
//     degraded. The response (with the provenance footer's CI line for
//     sampled results) is written back on the request's connection.
//
// Deadlines therefore never wedge a worker: the exact attempt stops at
// the next phase boundary and the degrade pass is time-bounded by
// construction. Responses to one connection may interleave across
// requests (match by id), but each response line is written atomically.
//
// Ordering note: admission happens on reader threads in arrival order
// per connection; the worker pool may complete requests in any order.

#ifndef SHAPCQ_SERVE_SERVER_H_
#define SHAPCQ_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "shapcq/agg/aggregate.h"
#include "shapcq/data/database.h"
#include "shapcq/obs/flight_recorder.h"
#include "shapcq/obs/trace.h"
#include "shapcq/serve/admission.h"
#include "shapcq/serve/journal.h"
#include "shapcq/serve/metrics.h"
#include "shapcq/serve/protocol.h"
#include "shapcq/shapley/solver_options.h"
#include "shapcq/util/status.h"

namespace shapcq {

struct ServerOptions {
  // TCP ports on 127.0.0.1. 0 picks an ephemeral port (read it back via
  // port() / metrics_port() after Start); metrics_port = -1 disables the
  // HTTP metrics listener (op:"metrics" still works on the main port).
  int port = 0;
  int metrics_port = 0;
  int worker_threads = 4;
  TenantLimits limits;
  // Base solver options; per-request fields (score, method, threads,
  // sampling) are overlaid from each SolveRequest.
  SolverOptions solver;
  // When non-empty, every accepted request is appended here.
  std::string journal_path;
  // Size-based journal rotation (serve/journal.h): when > 0 the journal
  // rolls to a numbered segment once the active file reaches this many
  // bytes. 0 keeps a single unbounded file.
  uint64_t journal_max_segment_bytes = 0;
  // When non-empty, the compiled-artifact directory (persist/artifact.h):
  // Start() warm-loads the plan and circuit caches from it (corrupt or
  // stale files are counted and ignored — cold start, never a crash), and
  // Stop() snapshots both caches back. SaveArtifacts() snapshots on
  // demand (shapcqd wires it to SIGHUP).
  std::string artifact_dir;
  // Whether clients may register tenants over the wire.
  bool allow_load_tenant = true;
  // Whether clients may mutate tenants (insert_fact / delete_fact).
  bool allow_mutations = true;
  // Auto-compaction trigger: after a mutation, compact the tenant when it
  // holds at least this many tombstones AND the dead rows exceed a quarter
  // of the live ones. <= 0 disables auto-compaction.
  int compact_min_tombstones = 64;
  // Tracing (obs/trace.h). Every admitted request gets a trace id at any
  // level (the journal stamps it); kOn additionally collects spans into
  // the per-stage histograms, the flight recorder, and the per-request
  // log line, and kFull puts the span dump + engine explanation on every
  // response (a request with "trace":true gets them at any level).
  // Results are bitwise-identical across levels.
  TraceLevel trace_level = TraceLevel::kOn;
  // Flight-recorder retention (obs/flight_recorder.h): the N slowest ok
  // requests, plus a ring of the most recent degraded/errored ones.
  size_t flight_slowest_capacity = 32;
  size_t flight_incident_capacity = 128;
  // Test seam: run on the worker thread after dequeue, before solving.
  // Lets tests hold workers to saturate admission or outrun deadlines
  // deterministically.
  std::function<void()> pre_solve_hook;
};

class AttributionServer {
 public:
  explicit AttributionServer(ServerOptions options);
  ~AttributionServer();  // calls Stop()

  AttributionServer(const AttributionServer&) = delete;
  AttributionServer& operator=(const AttributionServer&) = delete;

  // Binds the listeners, opens the journal, starts the worker pool and
  // acceptor threads. Fails without side effects (no half-started server).
  Status Start();

  // Stops accepting, shuts down every connection, joins every thread,
  // and closes the journal. Requests already queued are still drained
  // by the workers before they exit, but their responses go nowhere
  // (the connections are shut down first); anything left in the queue
  // after that is dropped and counted as an error. Idempotent.
  void Stop();

  // Bound ports, valid after a successful Start.
  int port() const { return port_; }
  int metrics_port() const { return metrics_port_; }

  // Registers (or replaces) a tenant database.
  void RegisterTenant(const std::string& name, Database db);

  // The current Prometheus exposition text.
  std::string MetricsText() const;

  // Snapshots the plan and circuit caches into options.artifact_dir (a
  // no-op returning OK when unset). Safe while serving: the caches are
  // snapshotted under their own locks and serialization runs outside
  // them. Called by Stop(); shapcqd also calls it on SIGHUP.
  Status SaveArtifacts();

  DaemonMetrics& metrics() { return metrics_; }
  const AdmissionController& admission() const { return admission_; }
  uint64_t journal_records_written() const;

  // The flight recorder's current contents as JSON — what GET
  // /debug/traces on the metrics port serves (shapcqd also dumps it on
  // SIGUSR1).
  std::string DebugTracesJson() const { return flight_recorder_.RenderJson(); }
  const FlightRecorder& flight_recorder() const { return flight_recorder_; }

  // Connections not yet reaped: reaps finished reader threads first,
  // then returns the remaining count. Trends to zero after clients
  // disconnect (observability/test seam).
  size_t live_connections();

 private:
  // A tenant's mutable database plus the lock that orders readers against
  // mutations: solves hold `mu` shared for the whole plan+solve window,
  // insert_fact/delete_fact hold it exclusive (applied synchronously on
  // the reader thread, journal append included, so the journal order is
  // the application order). RegisterTenant/load_tenant swap the whole
  // state pointer; in-flight solves keep the old state alive via
  // shared_ptr.
  struct TenantState {
    mutable std::shared_mutex mu;
    Database db;
  };

  struct Connection {
    // Closed by the reader thread when ConnectionLoop exits (fd becomes
    // -1, under write_mu); other threads only ever shutdown() it.
    int fd = -1;
    std::mutex write_mu;
    std::atomic<bool> closed{false};  // shutdown requested / peer gone
    std::atomic<bool> done{false};    // reader exited; thread reapable
  };

  // A live connection plus its reader thread, reaped once done.
  struct ConnectionHandle {
    std::shared_ptr<Connection> connection;
    std::thread thread;
  };

  struct Job {
    SolveRequest request;
    AggregateQuery query;
    SolverOptions options;
    std::string fingerprint;
    uint64_t enqueued_ns = 0;
    uint64_t trace_id = 0;  // always set; also journaled
    // Null when span collection is off (trace_level kOff and the request
    // didn't ask). Owned by the job; the queue mutex publishes it from
    // the reader thread to exactly one worker.
    std::unique_ptr<TraceContext> trace;
    std::shared_ptr<Connection> connection;
  };

  void AcceptLoop();
  void MetricsLoop();
  void ConnectionLoop(std::shared_ptr<Connection> connection);
  void WorkerLoop();
  // Joins and erases every connection whose reader has exited.
  void ReapFinishedConnections();

  // Handles one request line; writes any immediate response itself.
  void HandleLine(const std::shared_ptr<Connection>& connection,
                  const std::string& line);
  // The solve path after parsing: admission, journaling, enqueue.
  void EnqueueSolve(const std::shared_ptr<Connection>& connection,
                    SolveRequest request);
  // insert_fact/delete_fact: applied synchronously on the reader thread
  // under the tenant's exclusive lock, journaled, then answered.
  void HandleMutation(const std::shared_ptr<Connection>& connection,
                      const RequestEnvelope& envelope);
  // Runs one admitted job on a worker thread and writes its response.
  void RunJob(Job job);

  // Warm-loads the plan/circuit caches from options.artifact_dir at
  // Start. Never fails the boot: load errors increment
  // artifact_load_errors and the server compiles cold.
  void LoadArtifacts();

  void WriteResponse(const std::shared_ptr<Connection>& connection,
                     const SolveResponse& response);
  void WriteError(const std::shared_ptr<Connection>& connection, uint64_t id,
                  const Status& status);
  std::shared_ptr<TenantState> FindTenant(const std::string& name) const;

  ServerOptions options_;
  int port_ = -1;
  int metrics_port_ = -1;
  // Atomic: Stop() retires these while the accept loops read them.
  std::atomic<int> listen_fd_{-1};
  std::atomic<int> metrics_fd_{-1};

  std::atomic<bool> running_{false};
  std::thread acceptor_;
  std::thread metrics_thread_;
  std::vector<std::thread> workers_;

  mutable std::mutex connections_mu_;
  std::vector<ConnectionHandle> connections_;

  mutable std::mutex tenants_mu_;
  std::unordered_map<std::string, std::shared_ptr<TenantState>> tenants_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;

  AdmissionController admission_;
  DaemonMetrics metrics_;
  FlightRecorder flight_recorder_;
  std::unique_ptr<JournalWriter> journal_;
};

}  // namespace shapcq

#endif  // SHAPCQ_SERVE_SERVER_H_
