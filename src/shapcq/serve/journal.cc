#include "shapcq/serve/journal.h"

#include <cstring>
#include <utility>

namespace shapcq {

namespace {

constexpr char kMagic[8] = {'S', 'H', 'A', 'P', 'C', 'Q', 'J', 'L'};
// v1 had no op/fact tail (decodes as op=kSolve); v2 had no trace id
// (decodes as trace_id=0, "no trace").
constexpr uint32_t kVersion = 3;
constexpr uint32_t kOldestReadable = 1;
// A record is a handful of strings and fixed-width fields; anything huge
// indicates corruption (or an adversarial file), not a real request.
constexpr uint32_t kMaxPayload = 64u << 20;

void PutU32(std::string* out, uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  out->append(bytes, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  out->append(bytes, 8);
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutStr(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

// Bounded little-endian reader over one record payload.
class PayloadReader {
 public:
  PayloadReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool U32(uint32_t* v) {
    if (pos_ + 4 > size_) return false;
    *v = 0;
    for (int i = 3; i >= 0; --i) {
      *v = (*v << 8) |
           static_cast<uint8_t>(data_[pos_ + static_cast<size_t>(i)]);
    }
    pos_ += 4;
    return true;
  }
  bool U64(uint64_t* v) {
    if (pos_ + 8 > size_) return false;
    *v = 0;
    for (int i = 7; i >= 0; --i) {
      *v = (*v << 8) |
           static_cast<uint8_t>(data_[pos_ + static_cast<size_t>(i)]);
    }
    pos_ += 8;
    return true;
  }
  bool I64(int64_t* v) {
    uint64_t u;
    if (!U64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }
  bool Str(std::string* s) {
    uint32_t len;
    if (!U32(&len)) return false;
    if (pos_ + len > size_) return false;
    s->assign(data_ + pos_, len);
    pos_ += len;
    return true;
  }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

std::string EncodePayload(const JournalRecord& record, uint64_t sequence) {
  std::string payload;
  PutU64(&payload, sequence);
  PutU64(&payload, record.timestamp_ns);
  PutU64(&payload, record.request.id);
  PutStr(&payload, record.fingerprint);
  PutStr(&payload, record.request.tenant);
  PutStr(&payload, record.request.query);
  PutStr(&payload, record.request.agg);
  PutStr(&payload, record.request.tau);
  PutStr(&payload, record.request.score);
  PutStr(&payload, record.request.method);
  PutU32(&payload, static_cast<uint32_t>(record.request.threads));
  PutI64(&payload, record.request.samples);
  PutU64(&payload, record.request.seed);
  PutI64(&payload, record.request.deadline_ms);
  PutU32(&payload, static_cast<uint32_t>(record.op));
  PutStr(&payload, record.fact);
  PutU64(&payload, record.trace_id);
  return payload;
}

bool DecodePayload(const char* data, size_t size, uint32_t version,
                   JournalRecord* record) {
  PayloadReader reader(data, size);
  uint32_t threads = 0;
  bool ok = reader.U64(&record->sequence) &&
            reader.U64(&record->timestamp_ns) &&
            reader.U64(&record->request.id) &&
            reader.Str(&record->fingerprint) &&
            reader.Str(&record->request.tenant) &&
            reader.Str(&record->request.query) &&
            reader.Str(&record->request.agg) &&
            reader.Str(&record->request.tau) &&
            reader.Str(&record->request.score) &&
            reader.Str(&record->request.method) && reader.U32(&threads) &&
            reader.I64(&record->request.samples) &&
            reader.U64(&record->request.seed) &&
            reader.I64(&record->request.deadline_ms);
  if (!ok) return false;
  record->request.threads = static_cast<int>(threads);
  if (version >= 2) {
    uint32_t op = 0;
    if (!reader.U32(&op) || !reader.Str(&record->fact)) return false;
    if (op > static_cast<uint32_t>(JournalOp::kDeleteFact)) return false;
    record->op = static_cast<JournalOp>(op);
  } else {
    record->op = JournalOp::kSolve;
    record->fact.clear();
  }
  if (version >= 3) {
    if (!reader.U64(&record->trace_id)) return false;
  } else {
    record->trace_id = 0;
  }
  return reader.AtEnd();
}

std::string SegmentPath(const std::string& base, uint64_t index) {
  return index == 0 ? base : base + "." + std::to_string(index);
}

// Opens a fresh segment and writes the header; returns the file or null.
std::FILE* OpenSegment(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return nullptr;
  std::string header(kMagic, sizeof(kMagic));
  PutU32(&header, kVersion);
  if (std::fwrite(header.data(), 1, header.size(), file) != header.size() ||
      std::fflush(file) != 0) {
    std::fclose(file);
    return nullptr;
  }
  return file;
}

constexpr uint64_t kHeaderBytes = sizeof(kMagic) + 4;

}  // namespace

StatusOr<std::unique_ptr<JournalWriter>> JournalWriter::Open(
    const std::string& path, uint64_t max_segment_bytes) {
  std::FILE* file = OpenSegment(path);
  if (file == nullptr) {
    return InvalidArgumentError("cannot open journal for writing: " + path);
  }
  return std::unique_ptr<JournalWriter>(
      new JournalWriter(path, file, max_segment_bytes, kHeaderBytes));
}

JournalWriter::~JournalWriter() { Close(); }

Status JournalWriter::Rotate() {
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) {
    return InternalError("journal segment close failed: " +
                         SegmentPath(path_, segment_index_));
  }
  ++segment_index_;
  const std::string next = SegmentPath(path_, segment_index_);
  file_ = OpenSegment(next);
  if (file_ == nullptr) {
    return InternalError("cannot open journal segment: " + next);
  }
  segment_bytes_ = kHeaderBytes;
  return Status::Ok();
}

Status JournalWriter::Append(const JournalRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return FailedPreconditionError("journal already closed: " + path_);
  }
  // Rotate before writing, so a segment always holds >= 1 record and the
  // active segment never exceeds the limit by more than one record.
  if (max_segment_bytes_ > 0 && segment_bytes_ > kHeaderBytes &&
      segment_bytes_ >= max_segment_bytes_) {
    Status rotated = Rotate();
    if (!rotated.ok()) return rotated;
  }
  std::string payload = EncodePayload(record, sequence_);
  std::string framed;
  framed.reserve(payload.size() + 4);
  PutU32(&framed, static_cast<uint32_t>(payload.size()));
  framed += payload;
  if (std::fwrite(framed.data(), 1, framed.size(), file_) != framed.size() ||
      std::fflush(file_) != 0) {
    return InternalError("journal write failed: " +
                         SegmentPath(path_, segment_index_));
  }
  segment_bytes_ += framed.size();
  ++sequence_;
  return Status::Ok();
}

uint64_t JournalWriter::records_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sequence_;
}

uint64_t JournalWriter::segments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segment_index_ + 1;
}

Status JournalWriter::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::Ok();
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return InternalError("journal close failed: " + path_);
  return Status::Ok();
}

StatusOr<std::vector<JournalRecord>> ReadJournal(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return NotFoundError("cannot open journal: " + path);
  }
  auto fail = [&](size_t offset, size_t records, const std::string& what) {
    std::fclose(file);
    return InvalidArgumentError(
        "corrupt journal " + path + " at byte " + std::to_string(offset) +
        " after " + std::to_string(records) + " intact records: " + what);
  };

  char header[12];
  if (std::fread(header, 1, sizeof(header), file) != sizeof(header) ||
      std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return fail(0, 0, "bad magic");
  }
  uint32_t version = 0;
  for (int i = 3; i >= 0; --i) {
    version = (version << 8) |
              static_cast<uint8_t>(header[8 + static_cast<size_t>(i)]);
  }
  if (version < kOldestReadable || version > kVersion) {
    return fail(8, 0, "unsupported version " + std::to_string(version));
  }

  std::vector<JournalRecord> records;
  size_t offset = sizeof(header);
  while (true) {
    char len_bytes[4];
    size_t got = std::fread(len_bytes, 1, sizeof(len_bytes), file);
    if (got == 0 && std::feof(file)) break;  // clean EOF
    if (got != sizeof(len_bytes)) {
      return fail(offset, records.size(), "truncated length prefix");
    }
    uint32_t len = 0;
    for (int i = 3; i >= 0; --i) {
      len = (len << 8) |
            static_cast<uint8_t>(len_bytes[static_cast<size_t>(i)]);
    }
    if (len > kMaxPayload) {
      return fail(offset, records.size(), "oversized record");
    }
    std::string payload(len, '\0');
    if (len > 0 && std::fread(&payload[0], 1, len, file) != len) {
      return fail(offset + 4, records.size(), "truncated record");
    }
    JournalRecord record;
    if (!DecodePayload(payload.data(), payload.size(), version, &record)) {
      return fail(offset + 4, records.size(), "malformed record payload");
    }
    // Contiguous ascending within a file; a rotated segment starts past
    // zero (ReadJournalChain checks cross-segment continuity).
    uint64_t expected =
        records.empty() ? record.sequence : records.front().sequence +
                                                records.size();
    if (record.sequence != expected) {
      return fail(offset + 4, records.size(),
                  "sequence gap (expected " + std::to_string(expected) +
                      ", found " + std::to_string(record.sequence) + ")");
    }
    records.push_back(std::move(record));
    offset += 4 + len;
  }
  std::fclose(file);
  return records;
}

StatusOr<std::vector<JournalRecord>> ReadJournalChain(
    const std::string& path) {
  std::vector<JournalRecord> all;
  for (uint64_t segment = 0;; ++segment) {
    const std::string segment_path =
        segment == 0 ? path : path + "." + std::to_string(segment);
    StatusOr<std::vector<JournalRecord>> records = ReadJournal(segment_path);
    if (!records.ok()) {
      if (segment > 0 && records.status().code() == StatusCode::kNotFound) {
        break;  // past the last segment
      }
      return records.status();
    }
    for (JournalRecord& record : *records) {
      if (record.sequence != all.size()) {
        return InvalidArgumentError(
            "journal chain " + path + " breaks at segment " + segment_path +
            ": expected sequence " + std::to_string(all.size()) +
            ", found " + std::to_string(record.sequence));
      }
      all.push_back(std::move(record));
    }
  }
  return all;
}

}  // namespace shapcq
