// Daemon telemetry and its Prometheus rendering.
//
// DaemonMetrics is the single sink every server thread writes into:
// atomic counters for request outcomes, gauges for queue/in-flight
// depth, lock-free latency histograms (util/histogram.h), and a small
// mutexed map counting solved facts per engine (the "engine mix" —
// which algorithm actually scored each fact). RenderPrometheus folds in
// the process-wide PlanCache and lineage counters and emits standard
// text exposition format: every series is documented in
// docs/METRICS.md.

#ifndef SHAPCQ_SERVE_METRICS_H_
#define SHAPCQ_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "shapcq/lineage/stats.h"
#include "shapcq/shapley/plan.h"
#include "shapcq/util/histogram.h"

namespace shapcq {

class DaemonMetrics {
 public:
  // Request outcomes (one per solve request).
  std::atomic<uint64_t> requests_ok{0};
  std::atomic<uint64_t> requests_error{0};     // parse/build/solve errors
  std::atomic<uint64_t> requests_rejected{0};  // admission control
  std::atomic<uint64_t> requests_degraded{0};  // deadline -> Monte Carlo

  // Connection lifecycle.
  std::atomic<uint64_t> connections_opened{0};
  std::atomic<uint64_t> connections_closed{0};
  std::atomic<uint64_t> accept_errors{0};  // accept() failures (EMFILE...)

  std::atomic<uint64_t> journal_records{0};
  // Admitted requests whose journal append failed: they were served but
  // are missing from the journal, so replay is no longer a complete
  // trace. Nonzero here means the journal cannot prove parity.
  std::atomic<uint64_t> journal_errors{0};

  // Instantaneous depths (mirrors AdmissionController totals; kept as
  // gauges here so the metrics endpoint needs no lock ordering with the
  // admission mutex).
  std::atomic<int64_t> queue_depth{0};
  std::atomic<int64_t> in_flight{0};

  LatencyHistogram queue_wait;  // admission -> worker dequeue
  LatencyHistogram solve;       // ComputeAll wall time
  LatencyHistogram total;       // admission -> response written

  // Counts facts scored per engine name (SolveResult.algorithm).
  void CountEngineFacts(const std::string& engine, uint64_t facts);
  std::map<std::string, uint64_t> EngineMix() const;

 private:
  mutable std::mutex engine_mu_;
  std::map<std::string, uint64_t> engine_facts_;
};

// Renders the full exposition text: daemon counters/gauges/histograms
// plus the plan-cache and lineage counters passed in (callers snapshot
// PlanCache::Global().stats() and LineageStats::Global().Snapshot()).
std::string RenderPrometheus(const DaemonMetrics& metrics,
                             const PlanCache::Stats& plan_cache,
                             const LineageStatsSnapshot& lineage);

}  // namespace shapcq

#endif  // SHAPCQ_SERVE_METRICS_H_
