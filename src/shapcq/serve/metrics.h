// Daemon telemetry and its Prometheus rendering.
//
// DaemonMetrics is the single sink every server thread writes into:
// atomic counters for request outcomes, gauges for queue/in-flight
// depth, lock-free latency histograms (util/histogram.h), and a small
// mutexed map counting solved facts per engine (the "engine mix" —
// which algorithm actually scored each fact). RenderPrometheus folds in
// the process-wide PlanCache and lineage counters and emits standard
// text exposition format: every series is documented in
// docs/METRICS.md.

#ifndef SHAPCQ_SERVE_METRICS_H_
#define SHAPCQ_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "shapcq/lineage/circuit_cache.h"
#include "shapcq/lineage/stats.h"
#include "shapcq/shapley/plan.h"
#include "shapcq/util/histogram.h"

namespace shapcq {

class DaemonMetrics {
 public:
  // Request outcomes (one per solve request).
  std::atomic<uint64_t> requests_ok{0};
  std::atomic<uint64_t> requests_error{0};     // parse/build/solve errors
  std::atomic<uint64_t> requests_rejected{0};  // admission control
  std::atomic<uint64_t> requests_degraded{0};  // deadline -> Monte Carlo

  // Connection lifecycle.
  std::atomic<uint64_t> connections_opened{0};
  std::atomic<uint64_t> connections_closed{0};
  std::atomic<uint64_t> accept_errors{0};  // accept() failures (EMFILE...)

  std::atomic<uint64_t> journal_records{0};
  // Admitted requests whose journal append failed: they were served but
  // are missing from the journal, so replay is no longer a complete
  // trace. Nonzero here means the journal cannot prove parity.
  std::atomic<uint64_t> journal_errors{0};

  // Streaming mutation path (insert_fact / delete_fact ops).
  std::atomic<uint64_t> mutations_insert{0};
  std::atomic<uint64_t> mutations_delete{0};
  std::atomic<uint64_t> mutation_errors{0};
  // Dirty-answer telemetry: the summed (and the latest) dirty-set size of
  // mutations that carried a "query" probe — how much recomputation each
  // delta implies versus a full answer-set sweep.
  std::atomic<uint64_t> dirty_answers_total{0};
  std::atomic<int64_t> dirty_answers_last{-1};
  std::atomic<uint64_t> compactions{0};

  // Compiled-artifact persistence (persist/artifact.h). Loads happen at
  // Start, saves at Stop and on SIGHUP; a load error means the server
  // degraded to cold compilation, never that it served from a corrupt
  // artifact.
  std::atomic<uint64_t> artifact_load_errors{0};
  std::atomic<uint64_t> artifact_save_errors{0};
  std::atomic<uint64_t> artifact_plans_loaded{0};
  std::atomic<uint64_t> artifact_circuits_loaded{0};
  std::atomic<uint64_t> artifact_entries_skipped{0};  // per-entry rejects
  std::atomic<uint64_t> artifact_bytes_loaded{0};
  std::atomic<uint64_t> artifact_bytes_persisted{0};
  std::atomic<uint64_t> artifact_snapshots{0};  // successful SaveArtifacts

  // Instantaneous depths (mirrors AdmissionController totals; kept as
  // gauges here so the metrics endpoint needs no lock ordering with the
  // admission mutex).
  std::atomic<int64_t> queue_depth{0};
  std::atomic<int64_t> in_flight{0};

  LatencyHistogram queue_wait;  // admission -> worker dequeue
  LatencyHistogram solve;       // ComputeAll wall time
  LatencyHistogram total;       // admission -> response written

  // Counts facts scored per engine name (SolveResult.algorithm).
  void CountEngineFacts(const std::string& engine, uint64_t facts);
  std::map<std::string, uint64_t> EngineMix() const;

  // --- Per-stage latency histograms (obs/trace.h span names) --------------
  //
  // Fed from completed request traces: one histogram per stage name
  // (queue_wait, plan, solve, engine:<name>, lineage_compile, ...). The
  // vocabulary is fixed by the span sites in the code, so cardinality is
  // bounded by construction. Rendered as shapcq_stage_seconds{stage=...}.
  void RecordStage(const std::string& stage, uint64_t micros);
  std::map<std::string, LatencyHistogram::Snapshot> StageMix() const;

  // --- Per-tenant series (bounded label cardinality) ----------------------
  //
  // The first kMaxTenantLabels distinct tenant names get their own label;
  // every later tenant folds into "__other__" (a literal "__other__"
  // tenant folds too — the fold slot is never addressable as a real
  // tenant, and it does not count toward the cap).
  static constexpr size_t kMaxTenantLabels = 32;

  struct TenantCounters {
    uint64_t ok = 0;
    uint64_t error = 0;
    uint64_t rejected = 0;
    int64_t queue_depth = 0;
    // Staleness gauges, updated on every mutation/solve touch:
    uint64_t epoch = 0;       // Database::epoch()
    uint64_t tombstones = 0;  // dead rows awaiting compaction
    // Cross-tenant circuit-cache traffic attributed to this tenant's
    // solves (lineage/circuit_cache.h).
    uint64_t circuit_hits = 0;
    uint64_t circuit_misses = 0;
  };

  enum class Outcome { kOk, kError, kRejected };
  void CountTenantRequest(const std::string& tenant, Outcome outcome);
  void TenantQueueDelta(const std::string& tenant, int64_t delta);
  void SetTenantStaleness(const std::string& tenant, uint64_t epoch,
                          uint64_t tombstones);
  void AddTenantCircuitCache(const std::string& tenant, uint64_t hits,
                             uint64_t misses);
  std::map<std::string, TenantCounters> TenantMix() const;

 private:
  // The tenant's own slot when it has (or can still claim) a real label;
  // nullptr when the name folds — it is the "__other__" literal, or the
  // real-label population already reached kMaxTenantLabels. Callers hold
  // tenant_mu_.
  TenantCounters* OwnSlot(const std::string& tenant);
  // The slot for `tenant`: its own, else the "__other__" fold slot.
  TenantCounters& TenantSlot(const std::string& tenant);

  mutable std::mutex engine_mu_;
  std::map<std::string, uint64_t> engine_facts_;
  mutable std::mutex tenant_mu_;
  std::map<std::string, TenantCounters> tenant_counters_;
  mutable std::mutex stage_mu_;
  // unique_ptr because LatencyHistogram (an array of atomics) is neither
  // copyable nor movable; recording hits the histogram lock-free after
  // one locked map lookup.
  std::map<std::string, std::unique_ptr<LatencyHistogram>> stage_latency_;
};

// `value` as a Prometheus label value: escapes backslash, double quote,
// and newline per the text exposition format.
std::string EscapeLabel(const std::string& value);

// Renders the full exposition text: daemon counters/gauges/histograms
// plus the plan-cache, circuit-cache, and lineage counters passed in
// (callers snapshot PlanCache::Global().stats(),
// CircuitCache::Global().stats(), and LineageStats::Global().Snapshot()).
std::string RenderPrometheus(const DaemonMetrics& metrics,
                             const PlanCache::Stats& plan_cache,
                             const CircuitCache::Stats& circuit_cache,
                             const LineageStatsSnapshot& lineage);

}  // namespace shapcq

#endif  // SHAPCQ_SERVE_METRICS_H_
