// Binary request journal: every accepted request and mutation, replayable.
//
// The daemon appends one length-prefixed record per accepted solve request
// (serve/server.h journals after admission, before solving) and one per
// applied mutation (journaled inside the tenant's exclusive lock, so the
// journal order of mutations IS their application order). A journal is
// therefore a faithful trace of admitted production traffic: solve records
// carry the full SolveRequest — query text, specs, score/method, threads,
// sampling seed/budget, deadline — plus the plan fingerprint observed at
// serve time; mutation records carry the op and the fact in db_io.h line
// text (content-addressed, so replay works in any FactId space). That is
// exactly what serve/replay.h needs to re-execute the traffic
// deterministically and compare results bitwise.
//
// File layout (all integers little-endian):
//   8-byte magic "SHAPCQJL", u32 version (3; v1 files read as op=solve,
//   v1/v2 files read as trace_id=0)
//   per record: u32 payload_length, payload
//   payload: u64 sequence, u64 timestamp_ns, u64 request id,
//            str fingerprint, str tenant, str query, str agg, str tau,
//            str score, str method, i32 threads, i64 samples, u64 seed,
//            i64 deadline_ms,
//            u32 op, str fact,         (v2+; str = u32 length + bytes)
//            u64 trace_id              (v3+)
//
// Rotation: with a max segment size configured, the writer starts a new
// segment — `<path>` first, then `<path>.1`, `<path>.2`, ... — once the
// current one reaches the limit. Every segment is a complete journal file
// with its own header; sequence numbers run globally across the chain, so
// ReadJournalChain can verify nothing is missing between segments.
//
// A writer flushes after every Append, so a crash loses at most the record
// being written; the readers accept a clean EOF and report a truncated or
// corrupt tail as INVALID_ARGUMENT naming the byte offset and the number
// of intact records before it.

#ifndef SHAPCQ_SERVE_JOURNAL_H_
#define SHAPCQ_SERVE_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "shapcq/serve/protocol.h"
#include "shapcq/util/status.h"

namespace shapcq {

// What a journal record describes. Values are the wire encoding — append
// only.
enum class JournalOp : uint32_t {
  kSolve = 0,
  kInsertFact = 1,
  kDeleteFact = 2,
};

struct JournalRecord {
  uint64_t sequence = 0;      // 0-based, assigned by the writer
  uint64_t timestamp_ns = 0;  // MonotonicNanos() at acceptance
  uint64_t trace_id = 0;      // obs/trace.h id; 0 in pre-v3 journals
  std::string fingerprint;    // plan fingerprint at serve time ("" for
                              // mutations)
  JournalOp op = JournalOp::kSolve;
  // Mutations: the fact in db_io.h line text ("+R(1, 2)" / "-S(3)" for
  // inserts, the bare fact for deletes). Empty for solves. The tenant and
  // client id ride in `request`.
  std::string fact;
  SolveRequest request;
};

// Thread-safe appender (one mutex; records are written and flushed
// atomically with respect to each other).
class JournalWriter {
 public:
  // `max_segment_bytes` = 0 writes one unbounded file; otherwise a new
  // segment starts once the current one reaches the limit (a segment
  // always holds at least one record, so an oversized record cannot spin
  // the rotation).
  static StatusOr<std::unique_ptr<JournalWriter>> Open(
      const std::string& path, uint64_t max_segment_bytes = 0);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  // Appends `record` with the next sequence number (the record's own
  // `sequence` field is ignored) and flushes. May rotate first.
  Status Append(const JournalRecord& record);

  uint64_t records_written() const;
  // Segments completed + the active one (1 while unrotated).
  uint64_t segments() const;
  const std::string& path() const { return path_; }

  // Flushes and closes; further Appends fail. Idempotent.
  Status Close();

 private:
  JournalWriter(std::string path, std::FILE* file, uint64_t max_segment_bytes,
                uint64_t header_bytes)
      : path_(std::move(path)),
        file_(file),
        max_segment_bytes_(max_segment_bytes),
        segment_bytes_(header_bytes) {}

  // Closes the active segment and opens `<path>.<segment_index_+1>`.
  Status Rotate();

  std::string path_;
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;  // null after Close
  uint64_t sequence_ = 0;
  const uint64_t max_segment_bytes_;
  uint64_t segment_bytes_ = 0;   // bytes written to the active segment
  uint64_t segment_index_ = 0;   // 0 = base path, N = "<path>.N"
};

// Reads one journal file. Order preserved; sequences are validated to be
// contiguous ascending (a rotated segment starts past zero).
StatusOr<std::vector<JournalRecord>> ReadJournal(const std::string& path);

// Reads a rotated sequence: `<path>`, `<path>.1`, `<path>.2`, ... until
// the first missing segment. Validates that sequences start at 0 and run
// contiguously across segment boundaries.
StatusOr<std::vector<JournalRecord>> ReadJournalChain(const std::string& path);

}  // namespace shapcq

#endif  // SHAPCQ_SERVE_JOURNAL_H_
