// Binary request journal: every accepted request, replayable.
//
// The daemon appends one length-prefixed record per accepted solve request
// (serve/server.h journals after admission, before solving), so a journal
// is a faithful trace of admitted production traffic. A record carries the
// full SolveRequest — query text, specs, score/method, threads, sampling
// seed/budget, deadline — plus the plan fingerprint observed at serve time
// and a monotonic timestamp, which is exactly what serve/replay.h needs to
// re-execute the traffic deterministically and compare results bitwise.
//
// File layout (all integers little-endian):
//   8-byte magic "SHAPCQJL", u32 version (1)
//   per record: u32 payload_length, payload
//   payload: u64 sequence, u64 timestamp_ns, u64 request id,
//            str fingerprint, str tenant, str query, str agg, str tau,
//            str score, str method, i32 threads, i64 samples, u64 seed,
//            i64 deadline_ms           (str = u32 length + bytes)
//
// A writer flushes after every Append, so a crash loses at most the record
// being written; ReadJournal accepts a clean EOF and reports a truncated
// or corrupt tail as INVALID_ARGUMENT naming the byte offset and the
// number of intact records before it.

#ifndef SHAPCQ_SERVE_JOURNAL_H_
#define SHAPCQ_SERVE_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "shapcq/serve/protocol.h"
#include "shapcq/util/status.h"

namespace shapcq {

struct JournalRecord {
  uint64_t sequence = 0;      // 0-based, assigned by the writer
  uint64_t timestamp_ns = 0;  // MonotonicNanos() at acceptance
  std::string fingerprint;    // plan fingerprint at serve time
  SolveRequest request;
};

// Thread-safe appender (one mutex; records are written and flushed
// atomically with respect to each other).
class JournalWriter {
 public:
  static StatusOr<std::unique_ptr<JournalWriter>> Open(
      const std::string& path);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  // Appends `record` with the next sequence number (the record's own
  // `sequence` field is ignored) and flushes.
  Status Append(const JournalRecord& record);

  uint64_t records_written() const;
  const std::string& path() const { return path_; }

  // Flushes and closes; further Appends fail. Idempotent.
  Status Close();

 private:
  JournalWriter(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  std::string path_;
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;  // null after Close
  uint64_t sequence_ = 0;
};

// Reads a whole journal. Order preserved; sequences are validated to be
// 0..n-1.
StatusOr<std::vector<JournalRecord>> ReadJournal(const std::string& path);

}  // namespace shapcq

#endif  // SHAPCQ_SERVE_JOURNAL_H_
