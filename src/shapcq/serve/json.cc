#include "shapcq/serve/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace shapcq {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue value;
    Status status = ParseValue(&value, 0);
    if (!status.ok()) return status;
    SkipSpace();
    if (pos_ != text_.size()) return Error("trailing data");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 32;

  Status Error(const std::string& what) const {
    return InvalidArgumentError("JSON parse error at byte " +
                                std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->text);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return Status::Ok();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return Status::Ok();
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      out->kind = JsonValue::Kind::kNull;
      return Status::Ok();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{')) return Error("expected '{'");
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipSpace();
      std::string key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      out->object.emplace_back(std::move(key), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[')) return Error("expected '['");
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue value;
      Status status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']'");
    }
  }

  // Consumes exactly four hex digits (the payload of a \u escape).
  Status ParseHex4(unsigned* code) {
    if (pos_ + 4 > text_.size()) return Error("short \\u escape");
    *code = 0;
    for (int i = 0; i < 4; ++i) {
      char h = text_[pos_++];
      *code <<= 4;
      if (h >= '0' && h <= '9') {
        *code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        *code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        *code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        return Error("bad \\u escape");
      }
    }
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected '\"'");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control byte in string");
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Error("unterminated escape");
        char escape = text_[pos_++];
        switch (escape) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            unsigned code = 0;
            Status hex = ParseHex4(&code);
            if (!hex.ok()) return hex;
            if (code >= 0xDC00 && code <= 0xDFFF) {
              return Error("lone low surrogate in \\u escape");
            }
            if (code >= 0xD800 && code <= 0xDBFF) {
              // A high surrogate must pair with the following \uDC00-
              // \uDFFF; the combined code point is non-BMP (4-byte
              // UTF-8), never two 3-byte CESU-8 halves.
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return Error("unpaired high surrogate in \\u escape");
              }
              pos_ += 2;
              unsigned low = 0;
              hex = ParseHex4(&low);
              if (!hex.ok()) return hex;
              if (low < 0xDC00 || low > 0xDFFF) {
                return Error("unpaired high surrogate in \\u escape");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            }
            // The protocol is byte-oriented (query text is ASCII/UTF-8
            // passed through); encode the code point as UTF-8.
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else if (code < 0x10000) {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xF0 | (code >> 18)));
              out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Error("unknown escape");
        }
      } else {
        out->push_back(c);
        ++pos_;
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    size_t int_digits = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
      ++int_digits;
    }
    if (int_digits == 0) return Error("expected a value");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      size_t frac_digits = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
        ++frac_digits;
      }
      if (frac_digits == 0) return Error("digits required after '.'");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      size_t exp_digits = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' &&
             text_[pos_] <= '9') {
        ++pos_;
        ++exp_digits;
      }
      if (exp_digits == 0) return Error("digits required in exponent");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->text = std::string(text_.substr(start, pos_ - start));
    out->number = std::strtod(out->text.c_str(), nullptr);
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kString ? v->text : fallback;
}

int64_t JsonValue::GetInt64(const std::string& key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || v->kind != Kind::kNumber) return fallback;
  errno = 0;
  char* end = nullptr;
  long long parsed = std::strtoll(v->text.c_str(), &end, 10);
  // Integer token required: a fractional/exponent number falls back.
  if (errno != 0 || end == v->text.c_str() || *end != '\0') return fallback;
  return parsed;
}

uint64_t JsonValue::GetUint64(const std::string& key,
                              uint64_t fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || v->kind != Kind::kNumber || v->text.empty() ||
      v->text[0] == '-') {
    return fallback;
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v->text.c_str(), &end, 10);
  if (errno != 0 || end == v->text.c_str() || *end != '\0') return fallback;
  return parsed;
}

double JsonValue::GetNumber(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->kind == Kind::kBool ? v->boolean : fallback;
}

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

std::string JsonQuote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

void JsonWriter::Comma() {
  if (needs_comma_) out_ += ',';
  needs_comma_ = false;
}

void JsonWriter::Key(const char* key) {
  Comma();
  if (key != nullptr) {
    out_ += JsonQuote(key);
    out_ += ':';
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Comma();
  out_ += '{';
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray(const char* key) {
  Key(key);
  out_ += '[';
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginObjectInArray() {
  Comma();
  out_ += '{';
  needs_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::Str(const char* key, std::string_view value) {
  Key(key);
  out_ += JsonQuote(value);
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Int(const char* key, int64_t value) {
  Key(key);
  out_ += std::to_string(value);
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Uint(const char* key, uint64_t value) {
  Key(key);
  out_ += std::to_string(value);
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Num(const char* key, double value) {
  Key(key);
  if (!std::isfinite(value)) {
    out_ += "null";
  } else {
    // %.17g round-trips every finite double exactly, so a client parsing
    // the field back gets the bitwise-identical value (the replay parity
    // checks rely on this).
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    out_ += buffer;
  }
  needs_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Bool(const char* key, bool value) {
  Key(key);
  out_ += value ? "true" : "false";
  needs_comma_ = true;
  return *this;
}

}  // namespace shapcq
