#include "shapcq/serve/replay.h"

#include <cstring>
#include <utility>

#include "shapcq/serve/protocol.h"
#include "shapcq/shapley/plan.h"
#include "shapcq/util/clock.h"

namespace shapcq {

namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// First differing field between two solves of one record, or "" if
// bitwise identical.
std::string DiffResults(
    const std::vector<std::pair<FactId, SolveResult>>& warm,
    const std::vector<std::pair<FactId, SolveResult>>& cold) {
  if (warm.size() != cold.size()) {
    return "result count " + std::to_string(warm.size()) + " vs " +
           std::to_string(cold.size());
  }
  for (size_t i = 0; i < warm.size(); ++i) {
    const auto& [warm_fact, w] = warm[i];
    const auto& [cold_fact, c] = cold[i];
    std::string at = "fact " + std::to_string(warm_fact) + ": ";
    if (warm_fact != cold_fact) {
      return "fact order " + std::to_string(warm_fact) + " vs " +
             std::to_string(cold_fact);
    }
    if (w.is_exact != c.is_exact) return at + "exactness differs";
    if (w.is_exact && !(w.exact == c.exact)) {
      return at + "exact value " + w.exact.ToString() + " vs " +
             c.exact.ToString();
    }
    if (!SameBits(w.approximation, c.approximation)) {
      return at + "approximation bits differ";
    }
    if (w.algorithm != c.algorithm) {
      return at + "engine " + w.algorithm + " vs " + c.algorithm;
    }
    if (!SameBits(w.std_error, c.std_error)) {
      return at + "std_error bits differ";
    }
    if (w.samples != c.samples) return at + "sample count differs";
  }
  return "";
}

}  // namespace

StatusOr<ReplayResult> ReplayJournal(
    const std::vector<JournalRecord>& records,
    const std::map<std::string, std::shared_ptr<const Database>>& tenants,
    const ReplayOptions& options) {
  ReplayResult out;
  out.records = records.size();
  out.results.reserve(records.size());

  // Rebuild every record's query/options up front, so a malformed record
  // fails before any solving starts.
  struct Prepared {
    AggregateQuery query;
    SolverOptions solver;
    const Database* db = nullptr;
  };
  std::vector<Prepared> prepared;
  prepared.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const JournalRecord& record = records[i];
    auto tenant = tenants.find(record.request.tenant);
    if (tenant == tenants.end() || tenant->second == nullptr) {
      return NotFoundError("record " + std::to_string(i) +
                           " names unknown tenant '" +
                           record.request.tenant + "'");
    }
    StatusOr<AggregateQuery> query = BuildAggregateQuery(record.request);
    if (!query.ok()) {
      return InvalidArgumentError("record " + std::to_string(i) +
                                  " no longer parses: " +
                                  query.status().message());
    }
    StatusOr<SolverOptions> solver = BuildSolverOptions(record.request);
    if (!solver.ok()) {
      return InvalidArgumentError("record " + std::to_string(i) +
                                  " has bad options: " +
                                  solver.status().message());
    }
    if (options.num_threads > 0) solver->num_threads = options.num_threads;
    std::string fingerprint = PlanFingerprint(*query, solver->score);
    if (fingerprint == record.fingerprint) {
      ++out.fingerprint_matches;
    } else {
      return InternalError("record " + std::to_string(i) +
                           " fingerprint drift: journaled '" +
                           record.fingerprint + "', re-derived '" +
                           fingerprint + "'");
    }
    prepared.push_back(Prepared{std::move(query).value(),
                                std::move(solver).value(),
                                tenant->second.get()});
  }

  // Warm pass: one fresh cache, journal order — the serving shape.
  PlanCache cache;
  uint64_t warm_start = MonotonicNanos();
  for (size_t i = 0; i < prepared.size(); ++i) {
    bool cache_hit = false;
    std::shared_ptr<const AttributionPlan> plan =
        cache.GetOrCompile(prepared[i].query, prepared[i].solver.score,
                           &cache_hit);
    if (cache_hit) ++out.plan_cache_hits;
    SolverSession session(plan, *prepared[i].db);
    StatusOr<std::vector<std::pair<FactId, SolveResult>>> results =
        session.ComputeAll(prepared[i].solver);
    if (!results.ok()) {
      return Status(results.status().code(),
                    "record " + std::to_string(i) + " failed on replay: " +
                        results.status().message());
    }
    out.results.push_back(std::move(results).value());
  }
  out.warm_ms =
      static_cast<double>(MonotonicNanos() - warm_start) / 1e6;

  if (!options.run_cold_pass) return out;

  // Cold pass: per-record compile + direct ComputeAll, compared bitwise.
  uint64_t cold_start = MonotonicNanos();
  for (size_t i = 0; i < prepared.size(); ++i) {
    std::shared_ptr<const AttributionPlan> plan = AttributionPlan::Compile(
        prepared[i].query, prepared[i].solver.score);
    SolverSession session(plan, *prepared[i].db);
    StatusOr<std::vector<std::pair<FactId, SolveResult>>> results =
        session.ComputeAll(prepared[i].solver);
    if (!results.ok()) {
      return Status(results.status().code(),
                    "record " + std::to_string(i) +
                        " failed on cold replay: " +
                        results.status().message());
    }
    std::string diff = DiffResults(out.results[i], *results);
    if (!diff.empty()) {
      return InternalError("record " + std::to_string(i) +
                           " warm/cold mismatch: " + diff);
    }
  }
  out.cold_ms =
      static_cast<double>(MonotonicNanos() - cold_start) / 1e6;
  return out;
}

}  // namespace shapcq
