#include "shapcq/serve/replay.h"

#include <cstring>
#include <optional>
#include <utility>

#include "shapcq/data/db_io.h"
#include "shapcq/obs/trace.h"
#include "shapcq/serve/protocol.h"
#include "shapcq/shapley/plan.h"
#include "shapcq/util/clock.h"

namespace shapcq {

namespace {

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// First differing field between two solves of one record, or "" if
// bitwise identical.
std::string DiffResults(
    const std::vector<std::pair<FactId, SolveResult>>& warm,
    const std::vector<std::pair<FactId, SolveResult>>& cold) {
  if (warm.size() != cold.size()) {
    return "result count " + std::to_string(warm.size()) + " vs " +
           std::to_string(cold.size());
  }
  for (size_t i = 0; i < warm.size(); ++i) {
    const auto& [warm_fact, w] = warm[i];
    const auto& [cold_fact, c] = cold[i];
    std::string at = "fact " + std::to_string(warm_fact) + ": ";
    if (warm_fact != cold_fact) {
      return "fact order " + std::to_string(warm_fact) + " vs " +
             std::to_string(cold_fact);
    }
    if (w.is_exact != c.is_exact) return at + "exactness differs";
    if (w.is_exact && !(w.exact == c.exact)) {
      return at + "exact value " + w.exact.ToString() + " vs " +
             c.exact.ToString();
    }
    if (!SameBits(w.approximation, c.approximation)) {
      return at + "approximation bits differ";
    }
    if (w.algorithm != c.algorithm) {
      return at + "engine " + w.algorithm + " vs " + c.algorithm;
    }
    if (!SameBits(w.std_error, c.std_error)) {
      return at + "std_error bits differ";
    }
    if (w.samples != c.samples) return at + "sample count differs";
  }
  return "";
}

}  // namespace

StatusOr<ReplayResult> ReplayJournal(
    const std::vector<JournalRecord>& records,
    const std::map<std::string, std::shared_ptr<const Database>>& tenants,
    const ReplayOptions& options) {
  ReplayResult out;
  out.records = records.size();
  out.results.reserve(records.size());

  // Rebuild every record's query/options (or parse its fact line) up
  // front, so a malformed record fails before any solving starts.
  struct Prepared {
    bool is_mutation = false;
    bool is_insert = false;
    std::string tenant;
    std::optional<AggregateQuery> query;  // solve records
    SolverOptions solver;                 // solve records
    ParsedFact fact;                      // mutation records
  };
  std::vector<Prepared> prepared;
  prepared.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const JournalRecord& record = records[i];
    auto tenant = tenants.find(record.request.tenant);
    if (tenant == tenants.end() || tenant->second == nullptr) {
      return NotFoundError("record " + std::to_string(i) +
                           " names unknown tenant '" +
                           record.request.tenant + "'");
    }
    Prepared p;
    p.tenant = record.request.tenant;
    if (record.op != JournalOp::kSolve) {
      p.is_mutation = true;
      p.is_insert = record.op == JournalOp::kInsertFact;
      StatusOr<ParsedFact> fact = ParseFactLine(record.fact);
      if (!fact.ok()) {
        return InvalidArgumentError("record " + std::to_string(i) +
                                    " fact no longer parses: " +
                                    fact.status().message());
      }
      p.fact = std::move(fact).value();
      prepared.push_back(std::move(p));
      continue;
    }
    StatusOr<AggregateQuery> query = BuildAggregateQuery(record.request);
    if (!query.ok()) {
      return InvalidArgumentError("record " + std::to_string(i) +
                                  " no longer parses: " +
                                  query.status().message());
    }
    StatusOr<SolverOptions> solver = BuildSolverOptions(record.request);
    if (!solver.ok()) {
      return InvalidArgumentError("record " + std::to_string(i) +
                                  " has bad options: " +
                                  solver.status().message());
    }
    if (options.num_threads > 0) solver->num_threads = options.num_threads;
    std::string fingerprint = PlanFingerprint(*query, solver->score);
    if (fingerprint == record.fingerprint) {
      ++out.fingerprint_matches;
    } else {
      return InternalError("record " + std::to_string(i) +
                           " fingerprint drift: journaled '" +
                           record.fingerprint + "', re-derived '" +
                           fingerprint + "'");
    }
    p.query.emplace(std::move(query).value());
    p.solver = std::move(solver).value();
    prepared.push_back(std::move(p));
  }

  // Each pass owns mutable tenant copies; solves read the copy's state
  // at that point in the journal. Copies are made lazily — an all-solve
  // journal replays straight off the caller's databases.
  auto state_for = [&tenants](std::map<std::string, Database>* state,
                              const std::string& name) -> Database& {
    auto it = state->find(name);
    if (it == state->end()) {
      it = state->emplace(name, *tenants.at(name)).first;
    }
    return it->second;
  };
  auto db_for = [&tenants, &state_for](
                    std::map<std::string, Database>* state,
                    const std::string& name) -> const Database& {
    auto it = state->find(name);
    if (it != state->end()) return it->second;
    return *tenants.at(name);
  };
  auto apply = [](const Prepared& p, Database* db) -> Status {
    if (p.is_insert) {
      StatusOr<FactId> id =
          db->InsertFact(p.fact.relation, p.fact.args, p.fact.endogenous);
      return id.ok() ? Status::Ok() : id.status();
    }
    StatusOr<FactId> found = db->FindFact(p.fact.relation, p.fact.args);
    if (!found.ok()) return found.status();
    return db->DeleteFact(*found);
  };

  // Warm pass: one fresh cache, journal order — the serving shape.
  PlanCache cache;
  std::map<std::string, Database> warm_state;
  uint64_t warm_start = MonotonicNanos();
  for (size_t i = 0; i < prepared.size(); ++i) {
    if (prepared[i].is_mutation) {
      Status applied =
          apply(prepared[i], &state_for(&warm_state, prepared[i].tenant));
      if (!applied.ok()) {
        return Status(applied.code(), "record " + std::to_string(i) +
                                          " mutation failed on replay: " +
                                          applied.message());
      }
      ++out.mutations;
      out.results.emplace_back();  // keep record indices aligned
      if (options.collect_explanations) out.explanations.emplace_back();
      continue;
    }
    bool cache_hit = false;
    std::shared_ptr<const AttributionPlan> plan =
        cache.GetOrCompile(*prepared[i].query, prepared[i].solver.score,
                           &cache_hit);
    if (cache_hit) ++out.plan_cache_hits;
    SolverSession session(plan, db_for(&warm_state, prepared[i].tenant));
    // Journaled ids when present (v3+), fresh ones for older journals.
    std::optional<TraceContext> trace;
    SolverOptions solver = prepared[i].solver;
    if (options.collect_explanations) {
      trace.emplace(records[i].trace_id != 0 ? records[i].trace_id
                                             : NextTraceId());
      solver.trace = &*trace;
    }
    StatusOr<std::vector<std::pair<FactId, SolveResult>>> results =
        session.ComputeAll(solver);
    if (!results.ok()) {
      return Status(results.status().code(),
                    "record " + std::to_string(i) + " failed on replay: " +
                        results.status().message());
    }
    out.results.push_back(std::move(results).value());
    if (trace.has_value()) {
      out.explanations.push_back(BuildEngineExplanation(*trace));
    }
  }
  out.warm_ms =
      static_cast<double>(MonotonicNanos() - warm_start) / 1e6;

  if (!options.run_cold_pass) return out;

  // Cold pass: per-record compile + direct ComputeAll, compared bitwise.
  // Mutations are re-applied to this pass's own copies: identical API
  // call sequence -> identical FactIds -> bitwise-comparable solves.
  std::map<std::string, Database> cold_state;
  uint64_t cold_start = MonotonicNanos();
  for (size_t i = 0; i < prepared.size(); ++i) {
    if (prepared[i].is_mutation) {
      Status applied =
          apply(prepared[i], &state_for(&cold_state, prepared[i].tenant));
      if (!applied.ok()) {
        return Status(applied.code(), "record " + std::to_string(i) +
                                          " mutation failed on cold replay: " +
                                          applied.message());
      }
      continue;
    }
    std::shared_ptr<const AttributionPlan> plan = AttributionPlan::Compile(
        *prepared[i].query, prepared[i].solver.score);
    SolverSession session(plan, db_for(&cold_state, prepared[i].tenant));
    StatusOr<std::vector<std::pair<FactId, SolveResult>>> results =
        session.ComputeAll(prepared[i].solver);
    if (!results.ok()) {
      return Status(results.status().code(),
                    "record " + std::to_string(i) +
                        " failed on cold replay: " +
                        results.status().message());
    }
    std::string diff = DiffResults(out.results[i], *results);
    if (!diff.empty()) {
      return InternalError("record " + std::to_string(i) +
                           " warm/cold mismatch: " + diff);
    }
  }
  out.cold_ms =
      static_cast<double>(MonotonicNanos() - cold_start) / 1e6;
  return out;
}

}  // namespace shapcq
