// Per-tenant admission control for the attribution daemon.
//
// Every tenant gets the same two limits: max_in_flight requests being
// solved and max_queue requests waiting. A request over either limit is
// rejected *immediately* with a structured RESOURCE_EXHAUSTED status
// (naming the tenant, the observed depths, and the limits — the
// ExactUnavailableStatus idiom applied to capacity), so one tenant's
// burst backs up its own queue, never the pool: workers keep draining
// other tenants, and the client learns to retry with backoff instead of
// hanging.
//
// Lifecycle per request: TryAdmit (accepted into the queue) -> OnDequeue
// (a worker picked it up; queued -> in-flight) -> OnComplete (response
// written). The controller only counts; the queue itself lives in the
// server.

#ifndef SHAPCQ_SERVE_ADMISSION_H_
#define SHAPCQ_SERVE_ADMISSION_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "shapcq/util/status.h"

namespace shapcq {

struct TenantLimits {
  int max_in_flight = 8;  // requests being solved concurrently
  int max_queue = 64;     // requests waiting for a worker
};

class AdmissionController {
 public:
  explicit AdmissionController(TenantLimits limits) : limits_(limits) {}

  // OK (and counts the request as queued) when the tenant is under both
  // limits; RESOURCE_EXHAUSTED otherwise, with no state change.
  Status TryAdmit(const std::string& tenant);

  // The request left the queue for a worker.
  void OnDequeue(const std::string& tenant);

  // The request finished (response written, success or failure).
  void OnComplete(const std::string& tenant);

  struct Depths {
    int64_t queued = 0;
    int64_t in_flight = 0;
  };
  // Depths for one tenant (zeros for unknown tenants) and summed over all.
  Depths TenantDepths(const std::string& tenant) const;
  Depths TotalDepths() const;

  const TenantLimits& limits() const { return limits_; }

 private:
  struct TenantState {
    int64_t queued = 0;
    int64_t in_flight = 0;
  };

  const TenantLimits limits_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, TenantState> tenants_;
};

}  // namespace shapcq

#endif  // SHAPCQ_SERVE_ADMISSION_H_
