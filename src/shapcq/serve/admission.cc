#include "shapcq/serve/admission.h"

namespace shapcq {

Status AdmissionController::TryAdmit(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = tenants_[tenant];
  // Two checks so each rejection message stays precise: a full queue
  // names the queue limit, saturation names the in-flight limit.
  if (state.queued >= limits_.max_queue) {
    return ResourceExhaustedError(
        "tenant '" + tenant + "' queue full: " +
        std::to_string(state.queued) + " queued (limit " +
        std::to_string(limits_.max_queue) + "), " +
        std::to_string(state.in_flight) + " in flight (limit " +
        std::to_string(limits_.max_in_flight) +
        "); retry with backoff or raise --max-queue");
  }
  if (state.queued + state.in_flight >=
      static_cast<int64_t>(limits_.max_in_flight) + limits_.max_queue) {
    return ResourceExhaustedError(
        "tenant '" + tenant + "' saturated: " +
        std::to_string(state.in_flight) + " in flight (limit " +
        std::to_string(limits_.max_in_flight) + "), " +
        std::to_string(state.queued) + " queued (limit " +
        std::to_string(limits_.max_queue) +
        "); retry with backoff or raise --max-in-flight");
  }
  ++state.queued;
  return Status::Ok();
}

void AdmissionController::OnDequeue(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = tenants_[tenant];
  if (state.queued > 0) --state.queued;
  ++state.in_flight;
}

void AdmissionController::OnComplete(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& state = tenants_[tenant];
  if (state.in_flight > 0) --state.in_flight;
}

AdmissionController::Depths AdmissionController::TenantDepths(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return {};
  return {it->second.queued, it->second.in_flight};
}

AdmissionController::Depths AdmissionController::TotalDepths() const {
  std::lock_guard<std::mutex> lock(mu_);
  Depths total;
  for (const auto& [name, state] : tenants_) {
    (void)name;
    total.queued += state.queued;
    total.in_flight += state.in_flight;
  }
  return total;
}

}  // namespace shapcq
