// The shapcqd wire protocol: line-delimited JSON over a stream socket.
//
// Every message is one JSON object on one line. Requests carry an "op"
// (default "solve") and an optional caller-chosen "id" echoed back in the
// response, so a client may pipeline requests on one connection and match
// responses by id (the daemon may interleave responses from concurrent
// workers, but each response is written atomically as one line).
//
//   solve        {"op":"solve","id":7,"tenant":"acme",
//                 "query":"Q(x) <- R(x, y), S(y)","agg":"sum",
//                 "tau":"const:1","score":"shapley","method":"auto",
//                 "threads":1,"samples":10000,"seed":1,"deadline_ms":250}
//   load_tenant  {"op":"load_tenant","id":1,"tenant":"acme",
//                 "db":"+R(1, 2)\n-S(2)\n"}          (data/db_io.h format)
//   insert_fact  {"op":"insert_fact","id":4,"tenant":"acme",
//                 "fact":"+R(3, 4)","query":"Q(x) <- R(x, y)"}
//   delete_fact  {"op":"delete_fact","id":5,"tenant":"acme",
//                 "fact":"R(3, 4)"}       (or "fact_id":N)
//   ping         {"op":"ping","id":2}
//   metrics      {"op":"metrics","id":3}   (the /metrics text, JSON-quoted)
//
// Mutations are applied synchronously on the reader thread under the
// tenant's exclusive lock (serve/server.h) and journaled; the response
// reports the fact id, the tenant's new epoch, the tombstone count, and —
// when the optional "query" is present — the size of the mutation's
// dirty-answer set under that query (query/evaluator.h AnswersTouching).
// The fact uses db_io.h line text; insert_fact honours its +/- endogenous
// marker, delete_fact ignores it (content names the fact either way).
//
// Aggregate/τ specs use the shared grammar of agg/spec.h, and score/method
// take the CLI's spellings (shapley|banzhaf, auto|exact|brute|mc) — one
// request vocabulary across the CLI, the daemon, and the journal.
//
// Solve responses ("status":"ok") carry one result object per endogenous
// fact, ascending by fact id; exact scores are rendered as exact rational
// strings and every double uses %.17g, so a response is a bitwise-faithful
// rendering of the SolverSession results (replay parity compares through
// these fields). Errors ("status":"error") carry the structured Status:
// its code name (e.g. RESOURCE_EXHAUSTED for admission rejections,
// DEADLINE_EXCEEDED never — deadlines degrade to Monte Carlo instead) and
// message.

#ifndef SHAPCQ_SERVE_PROTOCOL_H_
#define SHAPCQ_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "shapcq/agg/aggregate.h"
#include "shapcq/data/database.h"
#include "shapcq/shapley/session.h"
#include "shapcq/shapley/solver_options.h"
#include "shapcq/util/status.h"

namespace shapcq {

// One attribution request: the solve-relevant fields, exactly what the
// journal persists (serve/journal.h) — a replayed record rebuilds the
// identical (AggregateQuery, SolverOptions) pair.
struct SolveRequest {
  uint64_t id = 0;
  std::string tenant;
  std::string query;           // CQ text (query/parser.h grammar)
  std::string agg = "sum";     // agg/spec.h grammar
  std::string tau = "const:1";
  std::string score = "shapley";  // shapley|banzhaf
  std::string method = "auto";    // auto|exact|brute|mc
  int threads = 1;             // worker threads inside the solve
  int64_t samples = 10000;     // Monte Carlo sample budget
  uint64_t seed = 1;           // Monte Carlo base seed
  int64_t deadline_ms = 0;     // 0 = no deadline
  // Ask for the trace summary + engine explanation in the response even
  // when the server's trace level is below "full". Does not affect the
  // results — scores are bitwise-identical either way.
  bool trace = false;
};

struct RequestEnvelope {
  enum class Op {
    kSolve,
    kLoadTenant,
    kInsertFact,
    kDeleteFact,
    kPing,
    kMetrics
  };
  Op op = Op::kSolve;
  SolveRequest solve;     // kSolve (id/tenant live here)
  uint64_t id = 0;        // non-solve ops
  std::string tenant;     // kLoadTenant / mutations
  std::string db_text;    // kLoadTenant (db_io.h line format)
  std::string fact;       // mutations: db_io.h fact line text
  int64_t fact_id = -1;   // kDeleteFact alternative to `fact`
  std::string dirty_query;  // mutations: optional CQ for dirty-set size
};

StatusOr<RequestEnvelope> ParseRequestLine(const std::string& line);

std::string SerializeSolveRequest(const SolveRequest& request);
std::string SerializeLoadTenant(uint64_t id, const std::string& tenant,
                                const std::string& db_text);
// `dirty_query` "" omits the dirty-set probe.
std::string SerializeInsertFact(uint64_t id, const std::string& tenant,
                                const std::string& fact,
                                const std::string& dirty_query = "");
std::string SerializeDeleteFact(uint64_t id, const std::string& tenant,
                                const std::string& fact,
                                const std::string& dirty_query = "");
std::string SerializePing(uint64_t id);
std::string SerializeMetricsRequest(uint64_t id);

// Rebuilds the aggregate query / solver options a request describes.
// INVALID_ARGUMENT on a malformed query, spec, score, or method. The
// options carry no deadline — the server owns cancellation wiring.
StatusOr<AggregateQuery> BuildAggregateQuery(const SolveRequest& request);
StatusOr<SolverOptions> BuildSolverOptions(const SolveRequest& request);

// One scored fact in a solve response.
struct FactScore {
  FactId fact = 0;
  std::string fact_text;    // human-readable fact, e.g. R(1, 2)
  bool exact = false;
  std::string exact_value;  // exact rational "p/q" ("" when sampled)
  double value = 0;         // approximation (exact value as double)
  std::string algorithm;
  double std_error = 0;     // Monte Carlo only
  int64_t samples = 0;      // Monte Carlo only
};

struct SolveResponse {
  uint64_t id = 0;
  std::string status;       // "ok" | "error"
  std::string code;         // StatusCodeName(...) when status == "error"
  std::string error;        // structured message when status == "error"
  bool degraded = false;    // deadline degraded exact -> Monte Carlo
  bool plan_cache_hit = false;
  std::string fingerprint;  // plan fingerprint (also journaled)
  double queue_ms = 0;      // time spent in the admission queue
  double solve_ms = 0;      // time spent solving
  std::vector<FactScore> results;
  std::string footer;       // plan-provenance footer (report.h), "" if off
  std::string metrics;      // kMetrics responses: the Prometheus text
  bool pong = false;        // kPing responses
  // Mutation responses (insert_fact / delete_fact):
  bool mutation = false;
  int64_t fact_id = -1;       // id inserted / deleted
  uint64_t epoch = 0;         // tenant epoch after the mutation
  int64_t tombstones = 0;     // dead rows awaiting compaction
  int64_t dirty_answers = -1; // dirty-set size (-1: no "query" given)
  bool compacted = false;     // the mutation triggered auto-compaction
  // Tracing (obs/trace.h); all optional on the wire, omitted when empty.
  std::string trace_id;     // 16 hex chars; always set on daemon solve
                            // responses (journal v3 carries the same id)
  std::string explain;      // engine-decision explanation
  std::string trace;        // span dump, JSON-as-string (like `metrics`)
};

std::string SerializeResponse(const SolveResponse& response);
StatusOr<SolveResponse> ParseResponseLine(const std::string& line);

// Assembles the result fields of an "ok" response from session output.
// `db` renders each fact's text; results arrive in ComputeAll order.
void FillResults(const Database& db,
                 const std::vector<std::pair<FactId, SolveResult>>& results,
                 SolveResponse* response);

}  // namespace shapcq

#endif  // SHAPCQ_SERVE_PROTOCOL_H_
