#include "shapcq/lineage/engine.h"

#include <algorithm>
#include <string>
#include <utility>

#include "shapcq/lineage/circuit_cache.h"
#include "shapcq/lineage/lineage.h"
#include "shapcq/obs/trace.h"
#include "shapcq/util/check.h"
#include "shapcq/util/combinatorics.h"
#include "shapcq/util/parallel.h"

namespace shapcq {

namespace {

Status CheckLineageShape(const AggregateQuery& a) {
  if (a.alpha.kind() != AggKind::kSum && a.alpha.kind() != AggKind::kCount) {
    return UnsupportedError(
        "lineage-circuit handles the linear aggregates Sum and Count only");
  }
  return Status::Ok();
}

CircuitBudget BudgetFrom(const LineageOptions& options) {
  CircuitBudget budget;
  budget.max_nodes = options.max_circuit_nodes;
  budget.max_vars = options.max_answer_vars;
  budget.max_clauses = options.max_answer_clauses;
  return budget;
}

// τ(t) for Sum, 1 for Count (same convention as the linearity engine).
Rational AnswerWeight(const AggregateQuery& a, const Tuple& answer) {
  return a.alpha.kind() == AggKind::kCount ? Rational(1)
                                           : a.tau->Evaluate(answer);
}

// An answer alive with no endogenous support is constant-true: every fact
// is a null player of its indicator game (and it contributes w·C(n,k) to
// every sum_k level).
bool ConstantTrue(const AnswerLineage& lineage) {
  return lineage.clauses.size() == 1 && lineage.clauses.front().empty();
}

// The per-answer unit of work: the indicator game of one answer, reduced
// to the answer's own lineage variables. The circuit and its stratified
// counts live in a (possibly shared) CircuitCacheEntry over the canonical
// variable space; `players` is the remap table translating canonical
// variable v back to this caller's literal (global player index or
// FactId).
struct AnswerCircuit {
  std::vector<int> players;  // canonical var -> caller literal
  std::shared_ptr<const CircuitCacheEntry> entry;
};

// Compiles and counts one answer's lineage over its canonical variable
// space, consulting the cross-tenant CircuitCache first when
// options.share_circuits is set. Sharing is bitwise-safe: the stratified
// model counts a cached entry carries are semantic invariants of the
// clause set, so every formula of one canonical form scores identically.
StatusOr<AnswerCircuit> BuildAnswerCircuit(const AnswerLineage& lineage,
                                           const LineageOptions& options,
                                           Combinatorics* comb) {
  std::vector<std::vector<int>> minimized = lineage.clauses;
  MinimizeClauses(&minimized);
  CanonicalClauseForm canonical = CanonicalizeClauses(minimized);
  AnswerCircuit built;
  built.players = std::move(canonical.to_input);
  const CircuitBudget budget = BudgetFrom(options);
  if (options.share_circuits) {
    built.entry = CircuitCache::Global().Lookup(canonical.clauses, budget);
    if (options.cache_counters != nullptr) {
      std::atomic<uint64_t>& counter = built.entry != nullptr
                                           ? options.cache_counters->hits
                                           : options.cache_counters->misses;
      counter.fetch_add(1, std::memory_order_relaxed);
    }
    if (built.entry != nullptr) return built;
  }
  StatusOr<LineageCircuit> circuit = CompileDnf(
      std::vector<std::vector<int>>(canonical.clauses), canonical.num_vars,
      budget);
  if (!circuit.ok()) {
    LineageStats::Global().RecordBudgetFallback();
    return circuit.status();
  }
  auto entry = std::make_shared<CircuitCacheEntry>();
  entry->clauses = std::move(canonical.clauses);
  entry->num_vars = canonical.num_vars;
  entry->circuit = std::move(circuit).value();
  LineageStats::Global().RecordCircuit(entry->circuit);
  entry->counts = CountModelsBySize(entry->circuit, comb);
  built.entry = options.share_circuits
                    ? CircuitCache::Global().Insert(std::move(entry))
                    : std::move(entry);
  return built;
}

// Per-fact contributions of one answer's indicator game, weighted by w.
// m = |local vars|; null players (facts outside the lineage) contribute 0
// and are simply absent from the result.
std::vector<std::pair<int, Rational>> ScoreAnswerCircuit(
    const AnswerCircuit& built, const Rational& weight, ScoreKind kind,
    Combinatorics* comb) {
  const int64_t m = static_cast<int64_t>(built.players.size());
  SHAPCQ_CHECK(m >= 1);
  const CircuitModelCounts& counts = built.entry->counts;
  const std::vector<BigInt>& total = counts.by_size;
  std::vector<std::pair<int, Rational>> contributions;
  contributions.reserve(built.players.size());
  if (kind == ScoreKind::kShapley) {
    // Σ_{k=0}^{m−1} k!(m−1−k)!·(P[k+1] − (T[k] − P[k])) over the common
    // denominator m! — one normalization per variable.
    std::vector<BigInt> coefficient(static_cast<size_t>(m));
    for (int64_t k = 0; k < m; ++k) {
      coefficient[static_cast<size_t>(k)] =
          comb->Factorial(k) * comb->Factorial(m - 1 - k);
    }
    const BigInt& denominator = comb->Factorial(m);
    for (size_t v = 0; v < built.players.size(); ++v) {
      const std::vector<BigInt>& with_v = counts.containing[v];
      BigInt numerator;
      for (int64_t k = 0; k < m; ++k) {
        const size_t uk = static_cast<size_t>(k);
        // A_v[k] − B_v[k]: sets of size k whose marginal is 1.
        BigInt delta = with_v[uk + 1] - (total[uk] - with_v[uk]);
        if (!delta.is_zero()) {
          numerator += coefficient[uk] * delta;
        }
      }
      if (numerator.is_zero()) continue;
      contributions.emplace_back(
          built.players[v], weight * Rational(std::move(numerator),
                                              denominator));
    }
  } else {
    // Banzhaf: (2·Σ_j P[j] − Σ_k T[k]) / 2^{m−1}.
    BigInt total_models;
    for (const BigInt& t : total) total_models += t;
    const BigInt denominator =
        BigInt::TwoPow(static_cast<uint64_t>(m > 1 ? m - 1 : 0));
    for (size_t v = 0; v < built.players.size(); ++v) {
      BigInt with_v_models;
      for (const BigInt& p : counts.containing[v]) {
        with_v_models += p;
      }
      BigInt numerator = with_v_models + with_v_models - total_models;
      if (numerator.is_zero()) continue;
      contributions.emplace_back(
          built.players[v], weight * Rational(std::move(numerator),
                                              denominator));
    }
  }
  return contributions;
}

}  // namespace

LineageStats& LineageStats::Global() {
  static LineageStats* stats = new LineageStats();
  return *stats;
}

void LineageStats::RecordCircuit(const LineageCircuit& circuit) {
  circuits_compiled_.fetch_add(1, std::memory_order_relaxed);
  circuit_nodes_.fetch_add(static_cast<uint64_t>(circuit.num_nodes()),
                           std::memory_order_relaxed);
  cache_lookups_.fetch_add(static_cast<uint64_t>(circuit.cache_lookups),
                           std::memory_order_relaxed);
  cache_hits_.fetch_add(static_cast<uint64_t>(circuit.cache_hits),
                        std::memory_order_relaxed);
}

void LineageStats::RecordBudgetFallback() {
  budget_fallbacks_.fetch_add(1, std::memory_order_relaxed);
}

LineageStatsSnapshot LineageStats::Snapshot() const {
  LineageStatsSnapshot snapshot;
  snapshot.circuits_compiled =
      circuits_compiled_.load(std::memory_order_relaxed);
  snapshot.circuit_nodes = circuit_nodes_.load(std::memory_order_relaxed);
  snapshot.cache_lookups = cache_lookups_.load(std::memory_order_relaxed);
  snapshot.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  snapshot.budget_fallbacks =
      budget_fallbacks_.load(std::memory_order_relaxed);
  return snapshot;
}

void LineageStats::Reset() {
  circuits_compiled_.store(0, std::memory_order_relaxed);
  circuit_nodes_.store(0, std::memory_order_relaxed);
  cache_lookups_.store(0, std::memory_order_relaxed);
  cache_hits_.store(0, std::memory_order_relaxed);
  budget_fallbacks_.store(0, std::memory_order_relaxed);
}

StatusOr<std::vector<std::pair<int, Rational>>> ScoreAnswerClauses(
    const std::vector<std::vector<int>>& clauses, const Rational& weight,
    ScoreKind kind, const LineageOptions& options, Combinatorics* comb) {
  AnswerLineage lineage;
  lineage.clauses = clauses;
  if (clauses.empty() || ConstantTrue(lineage) || weight.is_zero()) {
    return std::vector<std::pair<int, Rational>>{};
  }
  StatusOr<AnswerCircuit> built = BuildAnswerCircuit(lineage, options, comb);
  if (!built.ok()) return built.status();
  return ScoreAnswerCircuit(*built, weight, kind, comb);
}

StatusOr<std::vector<std::pair<FactId, Rational>>> LineageCircuitScoreAll(
    const AggregateQuery& a, const Database& db,
    const SolverOptions& options) {
  Status shape = CheckLineageShape(a);
  if (!shape.ok()) return shape;
  std::vector<FactId> endo = db.EndogenousFacts();
  if (endo.empty()) return std::vector<std::pair<FactId, Rational>>{};

  // Span sites here run on the calling thread only (the sweep's thread);
  // the per-chunk circuit work below never touches options.trace.
  Span extract_span(options.trace, "lineage_extract");
  const LineageSet lineage = ExtractLineage(a.query, db);
  extract_span.Annotate("answers",
                        static_cast<int64_t>(lineage.answers.size()));
  extract_span.Annotate("players",
                        static_cast<int64_t>(lineage.players.size()));
  extract_span.End();

  // The cheap per-answer work (weights, constant detection) runs serially
  // so failures land on exactly the answer a serial sweep would hit first.
  struct AnswerTask {
    const AnswerLineage* lineage;
    Rational weight;
  };
  std::vector<AnswerTask> tasks;
  tasks.reserve(lineage.answers.size());
  for (const AnswerLineage& answer : lineage.answers) {
    if (ConstantTrue(answer)) continue;  // all facts are null players
    Rational weight = AnswerWeight(a, answer.answer);
    if (weight.is_zero()) continue;
    tasks.push_back(AnswerTask{&answer, std::move(weight)});
  }

  // Shard per-answer circuits over contiguous answer chunks; slot t holds
  // answer t's contributions (or its failure), so the outcome is
  // independent of scheduling and bitwise-identical for every thread
  // count — the merge below walks answers in order, and exact rational
  // addition makes any grouping of the same terms canonical.
  std::vector<StatusOr<std::vector<std::pair<int, Rational>>>> per_task(
      tasks.size(), StatusOr<std::vector<std::pair<int, Rational>>>(
                        UnsupportedError("unset")));
  const int num_chunks = EffectiveThreadCount(
      options.num_threads, static_cast<int64_t>(tasks.size()));
  Span compile_span(options.trace, "lineage_compile");
  compile_span.Annotate("tasks", static_cast<int64_t>(tasks.size()));
  ParallelFor(
      num_chunks,
      [&](int64_t c) {
        const auto [begin, end] =
            ChunkBounds(static_cast<int64_t>(tasks.size()), num_chunks, c);
        Combinatorics comb;
        for (int64_t t = begin; t < end; ++t) {
          const AnswerTask& task = tasks[static_cast<size_t>(t)];
          StatusOr<AnswerCircuit> built =
              BuildAnswerCircuit(*task.lineage, options.lineage, &comb);
          if (!built.ok()) {
            per_task[static_cast<size_t>(t)] = built.status();
            continue;
          }
          per_task[static_cast<size_t>(t)] = ScoreAnswerCircuit(
              *built, task.weight, options.score, &comb);
        }
      },
      num_chunks);
  compile_span.End();

  std::vector<Rational> by_player(lineage.players.size());
  for (size_t t = 0; t < per_task.size(); ++t) {
    if (!per_task[t].ok()) return per_task[t].status();
    for (auto& [player, contribution] : *per_task[t]) {
      by_player[static_cast<size_t>(player)] += contribution;
    }
  }
  std::vector<std::pair<FactId, Rational>> scores;
  scores.reserve(endo.size());
  for (size_t p = 0; p < lineage.players.size(); ++p) {
    scores.emplace_back(lineage.players[p], std::move(by_player[p]));
  }
  return scores;
}

StatusOr<Rational> LineageCircuitScoreOne(const AggregateQuery& a,
                                          const Database& db, FactId fact,
                                          const SolverOptions& options) {
  SHAPCQ_CHECK(db.fact(fact).endogenous);
  SolverOptions serial = options;
  serial.num_threads = 1;  // the session fans per-fact calls out already
  StatusOr<std::vector<std::pair<FactId, Rational>>> all =
      LineageCircuitScoreAll(a, db, serial);
  if (!all.ok()) return all.status();
  for (auto& [id, score] : *all) {
    if (id == fact) return std::move(score);
  }
  return InternalError("lineage-circuit lost track of fact " +
                       std::to_string(fact));
}

StatusOr<SumKSeries> LineageCircuitSumK(const AggregateQuery& a,
                                        const Database& db,
                                        const SolverOptions& options) {
  Status shape = CheckLineageShape(a);
  if (!shape.ok()) return shape;
  const int64_t n = db.num_endogenous();
  const LineageSet lineage = ExtractLineage(a.query, db);
  Combinatorics comb;
  SumKSeries series(static_cast<size_t>(n) + 1);
  for (const AnswerLineage& answer : lineage.answers) {
    Rational weight = AnswerWeight(a, answer.answer);
    if (weight.is_zero()) continue;
    if (ConstantTrue(answer)) {
      // Alive in every sub-database: w·C(n, k) per level.
      const std::vector<BigInt>& row = comb.BinomialRow(n);
      for (int64_t k = 0; k <= n; ++k) {
        series[static_cast<size_t>(k)] +=
            weight * Rational(row[static_cast<size_t>(k)]);
      }
      continue;
    }
    StatusOr<AnswerCircuit> built =
        BuildAnswerCircuit(answer, options.lineage, &comb);
    if (!built.ok()) return built.status();
    // Pad the local counts to the n-player universe: the n − m facts
    // outside the lineage are free.
    const int64_t m = static_cast<int64_t>(built->players.size());
    const std::vector<BigInt>& pad = comb.BinomialRow(n - m);
    for (int64_t j = 0; j <= m; ++j) {
      const BigInt& models = built->entry->counts.by_size[static_cast<size_t>(j)];
      if (models.is_zero()) continue;
      Rational weighted = weight * Rational(models);
      for (int64_t g = 0; g <= n - m; ++g) {
        series[static_cast<size_t>(j + g)] +=
            weighted * Rational(pad[static_cast<size_t>(g)]);
      }
    }
  }
  return series;
}

void RegisterLineageCircuitEngine(EngineRegistry& registry) {
  EngineProvider provider;
  provider.name = "lineage-circuit";
  // After every frontier DP (priority 10/20) — those win whenever they
  // apply — and before the session's brute-force/Monte-Carlo fallback.
  provider.priority = 60;
  // Any CQ shape: self-joins and non-hierarchical queries included. The
  // per-database cost gate is the compilation budget, not the query.
  provider.applies = [](const AggregateQuery& a) {
    return a.alpha.kind() == AggKind::kSum ||
           a.alpha.kind() == AggKind::kCount;
  };
  provider.sum_k = LineageCircuitSumK;
  provider.score_one = LineageCircuitScoreOne;
  provider.score_all = LineageCircuitScoreAll;
  // ScoreOne reruns the whole batch: once the batch failed for a
  // database, a per-fact sweep would fail identically N more times.
  provider.score_one_reruns_batch = true;
  registry.Register(std::move(provider));
}

}  // namespace shapcq
