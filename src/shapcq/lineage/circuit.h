// Knowledge compilation of monotone lineage DNFs into decision-DNNF
// circuits, plus size-stratified model counting over the compiled DAG.
//
// CompileDnf runs Shannon expansion on a most-frequent-variable-first
// heuristic order, with two structure-exploiting rules:
//
//   * formula-hash caching — subformulas are canonicalized (minimal
//     clauses, sorted) and memoized, so the result is a DAG, not a tree;
//   * decomposable AND detection — when the clause set splits into
//     variable-disjoint components, each component compiles independently
//     and an AND node joins them.
//
// The resulting circuit has decision nodes (deterministic: the two
// branches disagree on the decision variable), decomposable AND nodes, and
// the two constants — a deterministic-decomposable (dec-DNNF) circuit, the
// class for which Deutch, Frost, Kimelfeld & Monet show exact Shapley
// computation is polynomial in circuit size. Compilation is budgeted
// (node count / variable width / clause count) and fails with UNSUPPORTED
// when exceeded, so callers can fall through to sampling.
//
// CountModelsBySize is the counting layer of the Shapley algorithm: one
// bottom-up pass annotates every node with its model count stratified by
// assignment weight (number of variables set to 1), and one top-down pass
// distributes root contexts to produce, for every variable v, the count of
// satisfying assignments of each weight that set v — exactly the
// quantities the counting-based Shapley formula consumes
// (circuit children mention subsets of their parent's variables; the gap
// variables are handled with binomial smoothing instead of materializing
// smoothing nodes). All counts are exact: the passes run on fixed-width
// CountValue integers that escape to BigInt on overflow, and the public
// results are BigInt.

#ifndef SHAPCQ_LINEAGE_CIRCUIT_H_
#define SHAPCQ_LINEAGE_CIRCUIT_H_

#include <cstdint>
#include <vector>

#include "shapcq/util/bigint.h"
#include "shapcq/util/combinatorics.h"
#include "shapcq/util/status.h"

namespace shapcq {

// Compilation budget. Exceeding any limit aborts compilation with
// UNSUPPORTED (the engine layer then falls through to brute force or
// Monte Carlo). Defaults are sized so well-structured lineages of hundreds
// of variables compile while adversarial ones fail fast.
struct CircuitBudget {
  int64_t max_nodes = int64_t{1} << 17;  // circuit size
  int max_vars = 256;                    // lineage width (variables)
  int64_t max_clauses = 8192;            // DNF clauses before compilation
};

// A compiled decision-DNNF over variables 0..num_vars-1.
//
// Node storage is arena-style: a node is POD, and its variable set and AND
// child list are (offset, length) spans into two pooled arrays owned by
// the circuit. Nodes pack contiguously and the counting passes sweep
// linear memory instead of chasing one heap vector per node.
class LineageCircuit {
 public:
  enum class NodeKind { kFalse, kTrue, kDecision, kAnd };

  struct Node {
    NodeKind kind;
    int var = -1;                // decision variable (kDecision)
    int hi = -1;                 // child under var = 1 (kDecision)
    int lo = -1;                 // child under var = 0 (kDecision)
    // The subformula's variable set, sorted ascending, as a span into
    // var_pool. Children mention subsets of it; the counting pass smooths
    // the gaps with binomials.
    int32_t vars_offset = 0;
    int32_t vars_len = 0;
    // Variable-disjoint conjuncts (kAnd) as a span into child_pool.
    int32_t children_offset = 0;
    int32_t children_len = 0;
  };

  // Read-only view of one node's slice of a pool.
  struct Span {
    const int* ptr;
    int32_t len;
    const int* begin() const { return ptr; }
    const int* end() const { return ptr + len; }
    int32_t size() const { return len; }
    bool empty() const { return len == 0; }
    int operator[](int32_t i) const { return ptr[i]; }
  };

  // Nodes in creation order: children precede parents, so ascending index
  // is a topological order (constants first at indices 0 and 1).
  std::vector<Node> nodes;
  // Pooled span storage: every node's variable set (var_pool) and AND
  // child list (child_pool), appended in node-creation order.
  std::vector<int> var_pool;
  std::vector<int> child_pool;
  int root = 0;
  int num_vars = 0;
  // Compiler telemetry: memo-cache behavior of this compilation.
  int64_t cache_lookups = 0;
  int64_t cache_hits = 0;

  Span vars(const Node& node) const {
    return {var_pool.data() + node.vars_offset, node.vars_len};
  }
  Span children(const Node& node) const {
    return {child_pool.data() + node.children_offset, node.children_len};
  }

  int64_t num_nodes() const { return static_cast<int64_t>(nodes.size()); }
  bool constant_true() const {
    return nodes[static_cast<size_t>(root)].kind == NodeKind::kTrue;
  }
  bool constant_false() const {
    return nodes[static_cast<size_t>(root)].kind == NodeKind::kFalse;
  }
};

// Canonicalizes a monotone DNF in place: each clause sorted and
// deduplicated, clauses ordered by (size, lex), and non-minimal clauses
// (supersets of an earlier clause, including duplicates) removed — in a
// monotone DNF a superset clause is logically redundant, so the minimized
// formula is equivalent. Shared by lineage extraction (minimal supports)
// and the compiler's canonical memo form.
void MinimizeClauses(std::vector<std::vector<int>>* clauses);

// Compiles a monotone DNF (each clause a set of variables in
// 0..num_vars-1; the formula is true iff some clause is fully set) into a
// dec-DNNF. Clauses need not be sorted, deduplicated, or minimal — the
// compiler canonicalizes. An empty clause set is the constant false; an
// empty clause makes the formula constant true.
StatusOr<LineageCircuit> CompileDnf(std::vector<std::vector<int>> clauses,
                                    int num_vars,
                                    const CircuitBudget& budget = {});

// Size-stratified model counts of a compiled circuit.
struct CircuitModelCounts {
  // by_size[k] = number of satisfying assignments setting exactly k of the
  // num_vars variables (length num_vars + 1).
  std::vector<BigInt> by_size;
  // containing[v][k] = number of satisfying assignments of weight k that
  // set variable v (length num_vars, each entry length num_vars + 1).
  std::vector<std::vector<BigInt>> containing;
};

// One bottom-up pass (per-node counts) plus one top-down pass (root
// contexts) computes by_size and containing for every variable at once.
// `comb` caches the binomial rows used for gap smoothing.
CircuitModelCounts CountModelsBySize(const LineageCircuit& circuit,
                                     Combinatorics* comb);

}  // namespace shapcq

#endif  // SHAPCQ_LINEAGE_CIRCUIT_H_
