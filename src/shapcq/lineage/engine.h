// The lineage-circuit engine: exact Shapley/Banzhaf beyond the tractable
// frontier via knowledge compilation.
//
// For the linear aggregates (Sum, Count — and Boolean/membership games as
// Count over a Boolean CQ), the game decomposes over answers:
//   A(E ∪ D_x) = Σ_t w_t · [t alive in E ∪ D_x],
// so by linearity of the Shapley value each fact's score is the weighted
// sum of its scores in the per-answer *indicator* games, and a fact absent
// from an answer's lineage is a null player there (contributes exactly 0).
// Each indicator game is a monotone Boolean function — the answer's
// lineage DNF (lineage.h) — compiled into a decision-DNNF (circuit.h), on
// which the counting-based algorithm of Deutch, Frost, Kimelfeld & Monet
// computes EVERY fact's score from one bottom-up + one top-down counting
// pass per circuit: with m lineage variables,
//   Shapley_v = Σ_{k<m} k!(m−1−k)!/m! · (P_v[k+1] − (T[k] − P_v[k])),
//   Banzhaf_v = (2·Σ_j P_v[j] − Σ_k T[k]) / 2^{m−1},
// where T[k] counts satisfying assignments of weight k and P_v[j] those of
// weight j that set v (CircuitModelCounts). Restricting each answer to its
// own lineage variables is sound because Shapley and Banzhaf are invariant
// under adding null players.
//
// This makes exact attribution on the FP#P-hard side of the frontier
// polynomial in the *circuit* size: cost tracks lineage structure, not the
// player count, lifting the exact ceiling past the 26-player brute-force
// horizon whenever the provenance is well-structured. Compilation is
// budgeted (SolverOptions::lineage); on blow-up the engine returns
// UNSUPPORTED and the session falls through to brute force or Monte Carlo.
//
// The engine registers as `lineage-circuit` (priority 60): after every
// frontier DP — which win whenever they apply — and before the
// brute-force/Monte-Carlo fallback. It accepts any CQ shape, including
// self-joins and non-hierarchical queries: hardness lives in the data's
// provenance, which the circuit compiler confronts directly.

#ifndef SHAPCQ_LINEAGE_ENGINE_H_
#define SHAPCQ_LINEAGE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "shapcq/agg/aggregate.h"
#include "shapcq/data/database.h"
#include "shapcq/lineage/circuit.h"
#include "shapcq/lineage/stats.h"
#include "shapcq/shapley/engine_registry.h"
#include "shapcq/shapley/score.h"
#include "shapcq/shapley/solver_options.h"
#include "shapcq/util/combinatorics.h"
#include "shapcq/util/status.h"

namespace shapcq {

// The process-wide lineage telemetry counters behind LineageStatsSnapshot
// (lineage/stats.h), updated with relaxed atomics — safe from sharded
// scorers.
class LineageStats {
 public:
  static LineageStats& Global();

  void RecordCircuit(const LineageCircuit& circuit);
  void RecordBudgetFallback();
  LineageStatsSnapshot Snapshot() const;
  void Reset();

 private:
  std::atomic<uint64_t> circuits_compiled_{0};
  std::atomic<uint64_t> circuit_nodes_{0};
  std::atomic<uint64_t> cache_lookups_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> budget_fallbacks_{0};
};

// Batched scorer: one circuit per answer, every fact's score from one
// counting pass per circuit, sharded over answers by options.num_threads
// (per-answer contributions merge in answer order — bitwise-identical for
// every thread count). Budget from options.lineage.
StatusOr<std::vector<std::pair<FactId, Rational>>> LineageCircuitScoreAll(
    const AggregateQuery& a, const Database& db, const SolverOptions& options);

// Per-fact entry point (the session's Compute path). Runs the full batched
// computation under options.lineage's budget — single-threaded, since the
// session already fans per-fact calls out — and selects `fact`; exactness
// over speed, ComputeAll is the intended interface.
StatusOr<Rational> LineageCircuitScoreOne(const AggregateQuery& a,
                                          const Database& db, FactId fact,
                                          const SolverOptions& options);

// Per-answer entry for incremental callers (stream/streaming.h): compiles
// and scores ONE answer's monotone lineage DNF whose literals are
// arbitrary non-negative ids — the streaming cache passes FactIds directly
// instead of dense player indices. A monotone renaming of the literals
// does not change the compiled circuit (clauses are rebuilt over the
// sorted local variable space), so the returned (id, contribution) pairs
// are bitwise-identical to what the batched scorer derives for the same
// answer under the dense labelling. The constant-true lineage (a single
// empty clause), an empty clause list (dead answer), and a zero weight
// all score nobody: empty result. Compilation blow-ups return UNSUPPORTED
// after recording a budget fallback, exactly like the batched paths.
StatusOr<std::vector<std::pair<int, Rational>>> ScoreAnswerClauses(
    const std::vector<std::vector<int>>& clauses, const Rational& weight,
    ScoreKind kind, const LineageOptions& options, Combinatorics* comb);

// sum_k(A, D) from the per-answer circuit model counts, padded to the full
// player universe with binomials. Powers ComputeSumKSeries (and the CLI's
// --expected) past the brute-force horizon. Compiles under the
// options.lineage budget — SolverOptions flows through the SumKEngine
// signature, so a customized budget applies here exactly as it does on
// the scoring paths.
StatusOr<SumKSeries> LineageCircuitSumK(const AggregateQuery& a,
                                        const Database& db,
                                        const SolverOptions& options = {});

void RegisterLineageCircuitEngine(EngineRegistry& registry);

}  // namespace shapcq

#endif  // SHAPCQ_LINEAGE_ENGINE_H_
