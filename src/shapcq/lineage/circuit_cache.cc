#include "shapcq/lineage/circuit_cache.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace shapcq {

namespace {

// Relabel-by-first-occurrence can un-sort clause internals and clause
// order; a couple of relabel+sort rounds reach a fixpoint for every
// practical lineage (the loop is bounded either way — a non-converging
// automorphism orbit still yields a deterministic form).
constexpr int kCanonicalizeRounds = 4;

void SortClauses(std::vector<std::vector<int>>* clauses) {
  for (std::vector<int>& clause : *clauses) {
    std::sort(clause.begin(), clause.end());
  }
  std::sort(clauses->begin(), clauses->end(),
            [](const std::vector<int>& a, const std::vector<int>& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
}

}  // namespace

CanonicalClauseForm CanonicalizeClauses(
    const std::vector<std::vector<int>>& minimized) {
  CanonicalClauseForm form;
  // Round 0: densify the arbitrary literals by first occurrence.
  std::unordered_map<int, int> dense;
  dense.reserve(minimized.size() * 2);
  form.clauses.reserve(minimized.size());
  for (const std::vector<int>& clause : minimized) {
    std::vector<int> relabelled;
    relabelled.reserve(clause.size());
    for (int literal : clause) {
      auto [it, inserted] =
          dense.emplace(literal, static_cast<int>(form.to_input.size()));
      if (inserted) form.to_input.push_back(literal);
      relabelled.push_back(it->second);
    }
    form.clauses.push_back(std::move(relabelled));
  }
  form.num_vars = static_cast<int>(form.to_input.size());
  SortClauses(&form.clauses);

  // Rounds 1..k: relabel by first occurrence in the sorted clause order,
  // re-sort, repeat until the labelling is the identity (fixpoint).
  for (int round = 0; round < kCanonicalizeRounds; ++round) {
    std::vector<int> relabel(static_cast<size_t>(form.num_vars), -1);
    int next = 0;
    for (const std::vector<int>& clause : form.clauses) {
      for (int v : clause) {
        if (relabel[static_cast<size_t>(v)] < 0) {
          relabel[static_cast<size_t>(v)] = next++;
        }
      }
    }
    bool identity = true;
    for (int v = 0; v < form.num_vars; ++v) {
      if (relabel[static_cast<size_t>(v)] != v) {
        identity = false;
        break;
      }
    }
    if (identity) break;
    for (std::vector<int>& clause : form.clauses) {
      for (int& v : clause) v = relabel[static_cast<size_t>(v)];
    }
    std::vector<int> to_input(form.to_input.size());
    for (int v = 0; v < form.num_vars; ++v) {
      to_input[static_cast<size_t>(relabel[static_cast<size_t>(v)])] =
          form.to_input[static_cast<size_t>(v)];
    }
    form.to_input = std::move(to_input);
    SortClauses(&form.clauses);
  }
  return form;
}

uint64_t CanonicalClauseHash(const std::vector<std::vector<int>>& canonical) {
  uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  auto mix = [&h](uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (value >> (byte * 8)) & 0xff;
      h *= 1099511628211ull;  // FNV prime
    }
  };
  mix(canonical.size());
  for (const std::vector<int>& clause : canonical) {
    mix(clause.size());
    for (int literal : clause) mix(static_cast<uint64_t>(literal));
  }
  return h;
}

size_t ApproxCircuitEntryBytes(const CircuitCacheEntry& entry) {
  size_t bytes = sizeof(CircuitCacheEntry);
  for (const std::vector<int>& clause : entry.clauses) {
    bytes += sizeof(clause) + clause.capacity() * sizeof(int);
  }
  bytes += entry.circuit.nodes.capacity() * sizeof(LineageCircuit::Node);
  bytes += entry.circuit.var_pool.capacity() * sizeof(int);
  bytes += entry.circuit.child_pool.capacity() * sizeof(int);
  auto bigint_bytes = [](const BigInt& v) {
    return sizeof(BigInt) + static_cast<size_t>(v.num_limbs32()) * 4;
  };
  for (const BigInt& v : entry.counts.by_size) bytes += bigint_bytes(v);
  for (const std::vector<BigInt>& row : entry.counts.containing) {
    bytes += sizeof(row);
    for (const BigInt& v : row) bytes += bigint_bytes(v);
  }
  return bytes;
}

CircuitCache& CircuitCache::Global() {
  static CircuitCache* cache = new CircuitCache();
  return *cache;
}

std::shared_ptr<const CircuitCacheEntry> CircuitCache::FindLocked(
    uint64_t hash, const std::vector<std::vector<int>>& canonical) const {
  auto bucket = buckets_.find(hash);
  if (bucket == buckets_.end()) return nullptr;
  for (const std::shared_ptr<const CircuitCacheEntry>& entry :
       bucket->second) {
    if (entry->clauses == canonical) return entry;
  }
  return nullptr;
}

std::shared_ptr<const CircuitCacheEntry> CircuitCache::Lookup(
    const std::vector<std::vector<int>>& canonical,
    const CircuitBudget& budget) {
  const uint64_t hash = CanonicalClauseHash(canonical);
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<const CircuitCacheEntry> entry =
      FindLocked(hash, canonical);
  // Node construction is monotone and compilation deterministic, so the
  // resident node count IS what a fresh compile would produce: an entry
  // over the caller's budget means that compile would fail, and reporting
  // a miss makes the caller fail identically.
  if (entry != nullptr &&
      (entry->circuit.num_nodes() > budget.max_nodes ||
       entry->num_vars > budget.max_vars ||
       static_cast<int64_t>(entry->clauses.size()) > budget.max_clauses)) {
    entry = nullptr;
  }
  if (entry != nullptr) {
    ++hits_;
  } else {
    ++misses_;
  }
  return entry;
}

std::shared_ptr<const CircuitCacheEntry> CircuitCache::Insert(
    std::shared_ptr<CircuitCacheEntry> entry) {
  entry->bytes = ApproxCircuitEntryBytes(*entry);
  const uint64_t hash = CanonicalClauseHash(entry->clauses);
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<const CircuitCacheEntry> resident =
      FindLocked(hash, entry->clauses);
  if (resident != nullptr) return resident;  // first insert won already
  if (entry->bytes > max_bytes_) return entry;  // never evict the world
  std::shared_ptr<const CircuitCacheEntry> inserted = std::move(entry);
  buckets_[hash].push_back(inserted);
  insertion_order_.push_back(inserted);
  bytes_ += inserted->bytes;
  ++inserts_;
  while ((insertion_order_.size() > max_entries_ || bytes_ > max_bytes_) &&
         !insertion_order_.empty()) {
    EvictLocked();
  }
  return inserted;
}

void CircuitCache::EvictLocked() {
  std::shared_ptr<const CircuitCacheEntry> victim =
      std::move(insertion_order_.front());
  insertion_order_.pop_front();
  bytes_ -= victim->bytes;
  ++evictions_;
  const uint64_t hash = CanonicalClauseHash(victim->clauses);
  auto bucket = buckets_.find(hash);
  if (bucket == buckets_.end()) return;
  auto& chain = bucket->second;
  for (auto it = chain.begin(); it != chain.end(); ++it) {
    if (it->get() == victim.get()) {
      chain.erase(it);
      break;
    }
  }
  if (chain.empty()) buckets_.erase(bucket);
}

std::vector<std::shared_ptr<const CircuitCacheEntry>> CircuitCache::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {insertion_order_.begin(), insertion_order_.end()};
}

CircuitCache::Stats CircuitCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.inserts = inserts_;
  stats.entries = static_cast<uint64_t>(insertion_order_.size());
  stats.bytes = static_cast<uint64_t>(bytes_);
  stats.evictions = evictions_;
  return stats;
}

void CircuitCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  buckets_.clear();
  insertion_order_.clear();
  bytes_ = 0;
  hits_ = 0;
  misses_ = 0;
  inserts_ = 0;
  evictions_ = 0;
}

}  // namespace shapcq
