#include "shapcq/lineage/lineage.h"

#include <algorithm>
#include <map>
#include <utility>

#include "shapcq/lineage/circuit.h"
#include "shapcq/query/evaluator.h"

namespace shapcq {

LineageSet ExtractLineage(const ConjunctiveQuery& q, const Database& db) {
  LineageSet lineage;
  lineage.players = db.EndogenousFacts();
  lineage.player_index.assign(static_cast<size_t>(db.num_facts()), -1);
  for (size_t p = 0; p < lineage.players.size(); ++p) {
    lineage.player_index[static_cast<size_t>(lineage.players[p])] =
        static_cast<int>(p);
  }

  // Group supports by answer over interned ids; answers materialize to
  // Values once per distinct answer and sort by Tuple, giving the same
  // canonical answer order as the evaluator-based engines.
  IdHomomorphisms ids = EnumerateHomomorphismIds(q, db);
  std::map<std::vector<ValueId>, std::vector<std::vector<int>>>
      supports_by_answer;
  for (size_t h = 0; h < ids.bindings.size(); ++h) {
    std::vector<int> support;
    for (FactId id : ids.used_facts[h]) {
      int player = lineage.player_index[static_cast<size_t>(id)];
      if (player >= 0) support.push_back(player);
    }
    // One homomorphism may use a fact in several atoms (self-joins):
    // dedup the clause.
    std::sort(support.begin(), support.end());
    support.erase(std::unique(support.begin(), support.end()), support.end());
    std::vector<ValueId> answer_ids;
    answer_ids.reserve(ids.head_slots.size());
    for (int slot : ids.head_slots) {
      answer_ids.push_back(ids.bindings[h][static_cast<size_t>(slot)]);
    }
    supports_by_answer[std::move(answer_ids)].push_back(std::move(support));
  }

  std::vector<std::pair<Tuple, std::vector<std::vector<int>>>> entries;
  entries.reserve(supports_by_answer.size());
  for (auto& [answer_ids, supports] : supports_by_answer) {
    Tuple answer;
    answer.reserve(answer_ids.size());
    for (ValueId id : answer_ids) answer.push_back(db.pool().value(id));
    entries.emplace_back(std::move(answer), std::move(supports));
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });

  for (auto& [answer, supports] : entries) {
    // Keep minimal supports only — shrinks the per-answer variable set
    // (the max_answer_vars budget gate) before compilation; the compiler
    // canonicalizes with the same shared helper.
    MinimizeClauses(&supports);
    lineage.answers.push_back({std::move(answer), std::move(supports)});
  }
  return lineage;
}

}  // namespace shapcq
