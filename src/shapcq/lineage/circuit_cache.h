// Cross-tenant cache of compiled answer circuits, keyed by a canonical
// clause-set form.
//
// Tenants whose per-answer lineages share *shape* — the same minimized
// monotone DNF up to a renaming of the fact ids — recompile identical
// decision-DNNF circuits today. CanonicalizeClauses computes a
// renaming-invariant normal form: literals are relabelled 0..m-1 by first
// occurrence and clauses re-sorted by (size, lex), iterated to a bounded
// fixpoint, with a remap table (`to_input`) translating canonical variable
// slots back to the caller's literals (player indices or FactIds) at
// scoring time. Two clause sets related by a monotone renaming — exactly
// the relation between one lineage extracted under dense player indices
// and under raw FactIds, or between two tenants holding shifted copies of
// the same data — canonicalize identically in one pass.
//
// Sharing is sound without any isomorphism check: the cache key is the
// canonical clause set itself (the hash only buckets; lookups compare
// clauses exactly), and everything the scoring layer reads off a cached
// entry — the size-stratified model counts — is a semantic invariant of
// the formula, not of the compilation. Exact BigInt/Rational arithmetic
// then makes cached scores bitwise-identical to fresh compilation
// (tests/circuit_cache_test.cc enforces this differentially). An
// imperfect canonical form (two isomorphic sets normalizing differently)
// costs a miss, never a wrong share.
//
// Budgets: compilation is deterministic and node construction monotone,
// so a cached circuit fits a caller's CircuitBudget exactly when a fresh
// compile under that budget would have succeeded. Lookup enforces this:
// an entry exceeding the caller's budget is a miss, and the caller's own
// compile fails with UNSUPPORTED exactly as it would uncached.
//
// The cache is process-wide (Global()), thread-safe, and bounded by entry
// count and approximate bytes with FIFO eviction; evicted entries stay
// alive through outstanding shared_ptrs. persist/artifact.h serializes
// entries to disk for warm-starting a restarted server.

#ifndef SHAPCQ_LINEAGE_CIRCUIT_CACHE_H_
#define SHAPCQ_LINEAGE_CIRCUIT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "shapcq/lineage/circuit.h"

namespace shapcq {

// The canonical clause-set form of a minimized monotone DNF.
struct CanonicalClauseForm {
  // Clauses over canonical variables 0..num_vars-1: literals sorted within
  // each clause, clauses sorted by (size, lex).
  std::vector<std::vector<int>> clauses;
  // to_input[v] = the caller's literal behind canonical variable v.
  std::vector<int> to_input;
  int num_vars = 0;
};

// Canonicalizes a *minimized* clause set (MinimizeClauses) whose literals
// are arbitrary non-negative ints. Deterministic; invariant under monotone
// literal renamings (and usually under arbitrary ones — a residual
// difference only costs cache misses).
CanonicalClauseForm CanonicalizeClauses(
    const std::vector<std::vector<int>>& minimized);

// FNV-1a hash of a canonical clause set — the cache's bucket key and the
// per-entry fingerprint recorded in persisted artifacts.
uint64_t CanonicalClauseHash(const std::vector<std::vector<int>>& canonical);

// One compiled-and-counted canonical formula. Immutable once cached.
struct CircuitCacheEntry {
  std::vector<std::vector<int>> clauses;  // canonical form (the key)
  int num_vars = 0;
  LineageCircuit circuit;
  CircuitModelCounts counts;
  size_t bytes = 0;  // approximate resident footprint (set by the cache)
};

// Approximate heap footprint of an entry (clauses + arena circuit +
// stratified counts), used for the byte budget.
size_t ApproxCircuitEntryBytes(const CircuitCacheEntry& entry);

class CircuitCache {
 public:
  static constexpr size_t kDefaultMaxEntries = 4096;
  static constexpr size_t kDefaultMaxBytes = size_t{256} << 20;  // 256 MiB

  // The process-wide cache consulted by the lineage-circuit engine when
  // LineageOptions::share_circuits is set (the default).
  static CircuitCache& Global();

  explicit CircuitCache(size_t max_entries = kDefaultMaxEntries,
                        size_t max_bytes = kDefaultMaxBytes)
      : max_entries_(max_entries == 0 ? 1 : max_entries),
        max_bytes_(max_bytes) {}

  // The cached entry for `canonical`, or nullptr. A resident entry that
  // exceeds `budget` is reported as a miss: a fresh compile under that
  // budget would fail, and the caller must observe that failure.
  std::shared_ptr<const CircuitCacheEntry> Lookup(
      const std::vector<std::vector<int>>& canonical,
      const CircuitBudget& budget);

  // Inserts `entry` (keyed by its clauses) unless an equal entry is
  // already resident — the first insert wins, so concurrent compilers of
  // one formula all end up sharing a single entry. Returns the resident
  // entry. Entries larger than the whole byte budget are returned
  // un-inserted rather than evicting the world.
  std::shared_ptr<const CircuitCacheEntry> Insert(
      std::shared_ptr<CircuitCacheEntry> entry);

  // Resident entries in insertion (FIFO) order — the persistence walk.
  std::vector<std::shared_ptr<const CircuitCacheEntry>> Snapshot() const;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t entries = 0;
    uint64_t bytes = 0;
    uint64_t evictions = 0;
  };
  Stats stats() const;

  // Drops every entry and resets the counters. Outstanding shared_ptrs
  // keep their entries alive.
  void Clear();

 private:
  std::shared_ptr<const CircuitCacheEntry> FindLocked(
      uint64_t hash, const std::vector<std::vector<int>>& canonical) const;
  void EvictLocked();

  const size_t max_entries_;
  const size_t max_bytes_;
  mutable std::mutex mu_;
  // hash -> resident entries with that hash (collisions chain; equality is
  // on the clause sets).
  std::unordered_map<uint64_t,
                     std::vector<std::shared_ptr<const CircuitCacheEntry>>>
      buckets_;
  // Insertion order, the FIFO eviction queue.
  std::deque<std::shared_ptr<const CircuitCacheEntry>> insertion_order_;
  size_t bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t inserts_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace shapcq

#endif  // SHAPCQ_LINEAGE_CIRCUIT_CACHE_H_
