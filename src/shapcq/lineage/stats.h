// Plain snapshot of the lineage-circuit telemetry counters.
//
// Split from engine.h so light consumers (report.h's provenance footer)
// can name the struct without pulling the whole engine — circuits,
// registry, atomics — into every report includer.

#ifndef SHAPCQ_LINEAGE_STATS_H_
#define SHAPCQ_LINEAGE_STATS_H_

#include <cstdint>

namespace shapcq {

// Process-wide lineage telemetry (monotone counters; see
// LineageStats::Snapshot() in lineage/engine.h). Surfaced by the CLI's
// --explain and the plan-provenance footer.
struct LineageStatsSnapshot {
  uint64_t circuits_compiled = 0;
  uint64_t circuit_nodes = 0;     // total nodes across compiled circuits
  uint64_t cache_lookups = 0;     // compiler formula-cache lookups
  uint64_t cache_hits = 0;        // ... of which hits
  uint64_t budget_fallbacks = 0;  // compilations aborted by the budget
};

// Counter delta between two snapshots of the same monotone counters
// (`after` taken later than `before`): what one request / one replay pass
// contributed. Used by the replay harness and the daemon's per-interval
// reporting; the /metrics endpoint exports the raw cumulative counters.
inline LineageStatsSnapshot LineageStatsDelta(
    const LineageStatsSnapshot& after, const LineageStatsSnapshot& before) {
  LineageStatsSnapshot delta;
  delta.circuits_compiled = after.circuits_compiled - before.circuits_compiled;
  delta.circuit_nodes = after.circuit_nodes - before.circuit_nodes;
  delta.cache_lookups = after.cache_lookups - before.cache_lookups;
  delta.cache_hits = after.cache_hits - before.cache_hits;
  delta.budget_fallbacks = after.budget_fallbacks - before.budget_fallbacks;
  return delta;
}

}  // namespace shapcq

#endif  // SHAPCQ_LINEAGE_STATS_H_
