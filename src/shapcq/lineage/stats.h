// Plain snapshot of the lineage-circuit telemetry counters.
//
// Split from engine.h so light consumers (report.h's provenance footer)
// can name the struct without pulling the whole engine — circuits,
// registry, atomics — into every report includer.

#ifndef SHAPCQ_LINEAGE_STATS_H_
#define SHAPCQ_LINEAGE_STATS_H_

#include <cstdint>

namespace shapcq {

// Process-wide lineage telemetry (monotone counters; see
// LineageStats::Snapshot() in lineage/engine.h). Surfaced by the CLI's
// --explain and the plan-provenance footer.
struct LineageStatsSnapshot {
  uint64_t circuits_compiled = 0;
  uint64_t circuit_nodes = 0;     // total nodes across compiled circuits
  uint64_t cache_lookups = 0;     // compiler formula-cache lookups
  uint64_t cache_hits = 0;        // ... of which hits
  uint64_t budget_fallbacks = 0;  // compilations aborted by the budget
};

}  // namespace shapcq

#endif  // SHAPCQ_LINEAGE_STATS_H_
