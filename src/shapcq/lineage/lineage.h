// Boolean lineage extraction: per-answer provenance as monotone DNF.
//
// For an answer t of Q over D, the Boolean lineage of t maps a subset
// E ⊆ D_n to "t ∈ Q(E ∪ D_x)": a monotone DNF whose clauses are the
// endogenous fact sets of the homomorphisms producing t. The lineage is the
// bridge to knowledge compilation (circuit.h): exact Shapley computation on
// the hardness side of the frontier costs time polynomial in the size of a
// decision-DNNF of the lineage (Deutch, Frost, Kimelfeld & Monet;
// Bienvenu, Figueira & Lafourcade reduce it further to model counting), so
// the cost tracks lineage *structure* rather than the player count.
//
// Extraction rides the indexed id join (EnumerateHomomorphismIds): each
// homomorphism's used facts arrive as dense ColumnStore fact ids, are
// deduplicated per clause (one atom may match a fact twice under
// self-joins), projected to endogenous player indices, and reduced to the
// minimal supports per answer (non-minimal clauses are logically redundant
// in a monotone DNF and only blow up compilation).

#ifndef SHAPCQ_LINEAGE_LINEAGE_H_
#define SHAPCQ_LINEAGE_LINEAGE_H_

#include <vector>

#include "shapcq/data/database.h"
#include "shapcq/query/cq.h"

namespace shapcq {

// One answer with its minimal-support DNF over player indices.
struct AnswerLineage {
  Tuple answer;
  // Minimal endogenous supports: each clause is a sorted, deduplicated
  // vector of player indices; no clause contains another. An empty clause
  // (exogenous-only support) makes the answer unconditionally alive and is
  // then the only clause.
  std::vector<std::vector<int>> clauses;
};

// The full lineage of Q over D: the player universe plus one DNF per
// distinct answer. Players are the endogenous facts in ascending FactId
// order; answers are sorted by answer tuple. Both orders are deterministic,
// so every consumer (engine sharding, tests) sees one canonical layout.
struct LineageSet {
  std::vector<FactId> players;     // player index -> fact id (ascending)
  std::vector<int> player_index;   // fact id -> player index, -1 exogenous
  std::vector<AnswerLineage> answers;

  int num_players() const { return static_cast<int>(players.size()); }
};

// Extracts the lineage of every answer of Q over D in one indexed join.
LineageSet ExtractLineage(const ConjunctiveQuery& q, const Database& db);

}  // namespace shapcq

#endif  // SHAPCQ_LINEAGE_LINEAGE_H_
