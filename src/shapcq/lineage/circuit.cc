#include "shapcq/lineage/circuit.h"

#include <algorithm>
#include <iterator>
#include <unordered_map>
#include <utility>

#include "shapcq/util/check.h"

namespace shapcq {

void MinimizeClauses(std::vector<std::vector<int>>* clauses) {
  for (std::vector<int>& clause : *clauses) {
    std::sort(clause.begin(), clause.end());
    clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
  }
  std::sort(clauses->begin(), clauses->end(),
            [](const std::vector<int>& x, const std::vector<int>& y) {
              return x.size() != y.size() ? x.size() < y.size() : x < y;
            });
  std::vector<std::vector<int>> minimal;
  minimal.reserve(clauses->size());
  for (std::vector<int>& clause : *clauses) {
    bool dominated = false;
    for (const std::vector<int>& kept : minimal) {
      if (std::includes(clause.begin(), clause.end(), kept.begin(),
                        kept.end())) {
        dominated = true;
        break;
      }
    }
    if (!dominated) minimal.push_back(std::move(clause));
  }
  *clauses = std::move(minimal);
}

namespace {

std::vector<int> ClauseUnion(const std::vector<std::vector<int>>& clauses) {
  std::vector<int> vars;
  for (const std::vector<int>& clause : clauses) {
    vars.insert(vars.end(), clause.begin(), clause.end());
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

// Memo key: clause list flattened as [len, vars..., len, vars..., ...].
// The minimized form is canonical, so equal formulas flatten identically.
std::vector<int> FlattenKey(const std::vector<std::vector<int>>& clauses) {
  std::vector<int> key;
  size_t total = clauses.size();
  for (const std::vector<int>& clause : clauses) total += clause.size();
  key.reserve(total);
  for (const std::vector<int>& clause : clauses) {
    key.push_back(static_cast<int>(clause.size()));
    key.insert(key.end(), clause.begin(), clause.end());
  }
  return key;
}

struct KeyHash {
  size_t operator()(const std::vector<int>& key) const {
    uint64_t h = 1469598103934665603ull;  // FNV offset basis
    for (int x : key) {
      h ^= static_cast<uint64_t>(static_cast<uint32_t>(x));
      h *= 1099511628211ull;  // FNV prime
    }
    return static_cast<size_t>(h);
  }
};

class DnfCompiler {
 public:
  DnfCompiler(int num_vars, const CircuitBudget& budget) : budget_(budget) {
    circuit_.num_vars = num_vars;
    LineageCircuit::Node constant;
    constant.kind = LineageCircuit::NodeKind::kFalse;
    circuit_.nodes.push_back(constant);
    constant.kind = LineageCircuit::NodeKind::kTrue;
    circuit_.nodes.push_back(constant);
  }

  StatusOr<LineageCircuit> Compile(std::vector<std::vector<int>> clauses) {
    if (circuit_.num_vars > budget_.max_vars) {
      return UnsupportedError(
          "lineage circuit budget exceeded: " +
          std::to_string(circuit_.num_vars) + " variables > max_vars " +
          std::to_string(budget_.max_vars));
    }
    if (static_cast<int64_t>(clauses.size()) > budget_.max_clauses) {
      return UnsupportedError(
          "lineage circuit budget exceeded: " +
          std::to_string(clauses.size()) + " clauses > max_clauses " +
          std::to_string(budget_.max_clauses));
    }
    MinimizeClauses(&clauses);
    int root = CompileMinimized(std::move(clauses));
    if (root < 0) return failure_;
    circuit_.root = root;
    return std::move(circuit_);
  }

 private:
  // Compiles an already-minimized clause set; returns the node id, or -1
  // with `failure_` set when the budget is exhausted.
  //
  // Decomposable AND detection, two sound cases for a monotone DNF:
  //   * a single clause is a conjunction of independent variables;
  //   * a variable set contained in EVERY clause factors out:
  //     φ = (∧ common) ∧ φ', with φ' over the remaining variables.
  // (Variable-disjoint clause GROUPS combine by OR, not AND, so they are
  // not an AND decomposition; instead the branch heuristic below resolves
  // one connected component before touching the next, which — together
  // with the formula cache — keeps the Shannon DAG additive rather than
  // multiplicative across independent groups.)
  int CompileMinimized(std::vector<std::vector<int>> clauses) {
    if (clauses.empty()) return 0;           // no clause: constant false
    if (clauses.front().empty()) return 1;   // empty clause: constant true

    std::vector<int> key = FlattenKey(clauses);
    ++circuit_.cache_lookups;
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      ++circuit_.cache_hits;
      return it->second;
    }

    std::vector<int> vars = ClauseUnion(clauses);
    int node = -1;

    if (clauses.size() == 1) {
      node = CompileClause(clauses.front());
    } else {
      std::vector<int> common = CommonVars(clauses);
      if (!common.empty()) {
        // Factor the shared conjunct out. Every clause strictly contains
        // `common` (a clause equal to it would have subsumed the rest in
        // minimization), so the residual has no empty clause; removing an
        // equal set from every clause preserves subsumption-freeness, and
        // MinimizeClauses only restores the canonical order.
        for (std::vector<int>& clause : clauses) {
          std::vector<int> residual;
          std::set_difference(clause.begin(), clause.end(), common.begin(),
                              common.end(), std::back_inserter(residual));
          clause = std::move(residual);
        }
        MinimizeClauses(&clauses);
        int rest = CompileMinimized(std::move(clauses));
        if (rest < 0) return -1;
        std::vector<int> children;
        children.reserve(common.size() + 1);
        for (int v : common) {
          int leaf = CompileMinimized({{v}});
          if (leaf < 0) return -1;
          children.push_back(leaf);
        }
        children.push_back(rest);
        node = NewAnd(std::move(children), std::move(vars));
        memo_.emplace(std::move(key), node);
        return node;
      }
      // Shannon expansion on the most frequent variable of the first
      // connected component (ties: smallest id). Setting v = 1 shrinks
      // the clauses containing it; setting v = 0 erases them.
      int branch_var = PickBranchVariable(clauses, vars);
      std::vector<std::vector<int>> hi;
      std::vector<std::vector<int>> lo;
      hi.reserve(clauses.size());
      for (std::vector<int>& clause : clauses) {
        auto pos = std::lower_bound(clause.begin(), clause.end(), branch_var);
        if (pos != clause.end() && *pos == branch_var) {
          clause.erase(pos);
          hi.push_back(std::move(clause));
        } else {
          hi.push_back(clause);
          lo.push_back(std::move(clause));
        }
      }
      // Removing a variable can create subsumption (or an empty clause);
      // re-minimize the hi branch. The lo branch only dropped clauses, so
      // it stays minimal and ordered.
      MinimizeClauses(&hi);
      int hi_id = CompileMinimized(std::move(hi));
      if (hi_id < 0) return -1;
      int lo_id = CompileMinimized(std::move(lo));
      if (lo_id < 0) return -1;
      node = NewDecision(branch_var, hi_id, lo_id, std::move(vars));
    }
    if (node < 0) return -1;
    memo_.emplace(std::move(key), node);
    return node;
  }

  // A single clause: AND over per-variable decision leaves
  // (variable-disjoint, hence decomposable).
  int CompileClause(const std::vector<int>& clause) {
    if (clause.size() == 1) {
      return NewDecision(clause.front(), 1, 0, {clause.front()});
    }
    std::vector<int> children;
    children.reserve(clause.size());
    for (int v : clause) {
      int leaf = CompileMinimized({{v}});
      if (leaf < 0) return -1;
      children.push_back(leaf);
    }
    return NewAnd(std::move(children), clause);
  }

  static std::vector<int> CommonVars(
      const std::vector<std::vector<int>>& clauses) {
    std::vector<int> common = clauses.front();
    for (size_t c = 1; c < clauses.size() && !common.empty(); ++c) {
      std::vector<int> next;
      std::set_intersection(common.begin(), common.end(), clauses[c].begin(),
                            clauses[c].end(), std::back_inserter(next));
      common = std::move(next);
    }
    return common;
  }

  // The most frequent variable within the connected component (of the
  // clause-variable incidence graph) that contains the smallest variable.
  // Staying inside one component until it is resolved keeps independent
  // clause groups from interleaving in the expansion, so the cache
  // collapses the cross product of their partial states.
  static int PickBranchVariable(const std::vector<std::vector<int>>& clauses,
                                const std::vector<int>& vars) {
    // Union-find over the clause variables.
    std::unordered_map<int, int> index;
    index.reserve(vars.size());
    for (size_t i = 0; i < vars.size(); ++i) {
      index.emplace(vars[i], static_cast<int>(i));
    }
    std::vector<int> parent(vars.size());
    for (size_t i = 0; i < vars.size(); ++i) parent[i] = static_cast<int>(i);
    auto find = [&parent](int x) {
      while (parent[static_cast<size_t>(x)] != x) {
        parent[static_cast<size_t>(x)] =
            parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
        x = parent[static_cast<size_t>(x)];
      }
      return x;
    };
    for (const std::vector<int>& clause : clauses) {
      for (size_t j = 1; j < clause.size(); ++j) {
        int a = find(index[clause[0]]);
        int b = find(index[clause[j]]);
        if (a != b) parent[static_cast<size_t>(b)] = a;
      }
    }
    const int first_component = find(0);  // component of the smallest var
    int best_var = -1;
    int best_count = 0;
    std::unordered_map<int, int> frequency;
    for (const std::vector<int>& clause : clauses) {
      for (int v : clause) ++frequency[v];
    }
    for (size_t i = 0; i < vars.size(); ++i) {
      if (find(static_cast<int>(i)) != first_component) continue;
      int count = frequency[vars[i]];
      if (count > best_count ||
          (count == best_count && (best_var < 0 || vars[i] < best_var))) {
        best_var = vars[i];
        best_count = count;
      }
    }
    SHAPCQ_CHECK(best_var >= 0);
    return best_var;
  }

  int NewDecision(int var, int hi, int lo, const std::vector<int>& node_vars) {
    LineageCircuit::Node node;
    node.kind = LineageCircuit::NodeKind::kDecision;
    node.var = var;
    node.hi = hi;
    node.lo = lo;
    return NewNode(node, node_vars, {});
  }

  int NewAnd(const std::vector<int>& children,
             const std::vector<int>& node_vars) {
    LineageCircuit::Node node;
    node.kind = LineageCircuit::NodeKind::kAnd;
    return NewNode(node, node_vars, children);
  }

  // Appends the node's spans to the circuit pools and the node itself.
  // Budget is checked before anything is appended, so a failed compile
  // leaves no dangling pool slices.
  int NewNode(LineageCircuit::Node node, const std::vector<int>& node_vars,
              const std::vector<int>& children) {
    if (circuit_.num_nodes() >= budget_.max_nodes) {
      failure_ = UnsupportedError(
          "lineage circuit budget exceeded: more than " +
          std::to_string(budget_.max_nodes) + " nodes");
      return -1;
    }
    node.vars_offset = static_cast<int32_t>(circuit_.var_pool.size());
    node.vars_len = static_cast<int32_t>(node_vars.size());
    circuit_.var_pool.insert(circuit_.var_pool.end(), node_vars.begin(),
                             node_vars.end());
    node.children_offset = static_cast<int32_t>(circuit_.child_pool.size());
    node.children_len = static_cast<int32_t>(children.size());
    circuit_.child_pool.insert(circuit_.child_pool.end(), children.begin(),
                               children.end());
    circuit_.nodes.push_back(node);
    return static_cast<int>(circuit_.nodes.size()) - 1;
  }

  const CircuitBudget& budget_;
  LineageCircuit circuit_;
  Status failure_ = UnsupportedError("lineage circuit compilation failed");
  std::unordered_map<std::vector<int>, int, KeyHash> memo_;
};

// --- counting -------------------------------------------------------------

// Count vectors indexed by assignment weight; an empty vector is the zero
// polynomial. CountValue keeps the convolutions allocation-free until an
// entry outgrows 256 bits (exactness is preserved either way).
using Poly = std::vector<CountValue>;

// c[k] = Σ_i a[i]·b[k−i], truncated to max_len entries.
Poly Conv(const Poly& a, const Poly& b, size_t max_len) {
  if (a.empty() || b.empty()) return {};
  size_t len = std::min(a.size() + b.size() - 1, max_len);
  Poly c(len);
  for (size_t i = 0; i < a.size() && i < len; ++i) {
    if (a[i].is_zero()) continue;
    for (size_t j = 0; j < b.size() && i + j < len; ++j) {
      if (b[j].is_zero()) continue;
      c[i + j].AddProduct(a[i], b[j]);
    }
  }
  return c;
}

// The polynomial of one extra variable forced to 1: shifts weights up.
Poly Shift1(const Poly& p, size_t max_len) {
  if (p.empty()) return {};
  Poly shifted(std::min(p.size() + 1, max_len));
  for (size_t i = 0; i + 1 < max_len && i < p.size(); ++i) {
    shifted[i + 1] = p[i];
  }
  return shifted;
}

void AddInto(Poly* acc, const Poly& add) {
  if (add.empty()) return;
  if (acc->size() < add.size()) acc->resize(add.size());
  for (size_t i = 0; i < add.size(); ++i) {
    if (!add[i].is_zero()) (*acc)[i] += add[i];
  }
}

// parent \ child \ {skip_var}: the "gap" variables a child edge smooths
// over (both inputs sorted; the spans point into the circuit's var pool).
std::vector<int> GapVars(LineageCircuit::Span parent,
                         LineageCircuit::Span child, int skip_var) {
  std::vector<int> gap;
  std::set_difference(parent.begin(), parent.end(), child.begin(),
                      child.end(), std::back_inserter(gap));
  auto pos = std::lower_bound(gap.begin(), gap.end(), skip_var);
  if (pos != gap.end() && *pos == skip_var) gap.erase(pos);
  return gap;
}

}  // namespace

StatusOr<LineageCircuit> CompileDnf(std::vector<std::vector<int>> clauses,
                                    int num_vars,
                                    const CircuitBudget& budget) {
  for (const std::vector<int>& clause : clauses) {
    for (int v : clause) {
      SHAPCQ_CHECK(v >= 0 && v < num_vars);
    }
  }
  DnfCompiler compiler(num_vars, budget);
  return compiler.Compile(std::move(clauses));
}

CircuitModelCounts CountModelsBySize(const LineageCircuit& circuit,
                                     Combinatorics* comb) {
  const size_t max_len = static_cast<size_t>(circuit.num_vars) + 1;
  const auto& nodes = circuit.nodes;

  // Bottom-up: counts[n][k] = satisfying assignments of node n's
  // subformula over its own variable set, with exactly k ones. Creation
  // order is topological (children first), so one ascending sweep
  // suffices. Decision edges smooth the child's missing ("gap") variables
  // with a binomial row; AND children partition the parent's variables,
  // so their vectors convolve gap-free.
  std::vector<Poly> counts(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    const LineageCircuit::Node& node = nodes[i];
    switch (node.kind) {
      case LineageCircuit::NodeKind::kFalse:
        break;  // zero polynomial
      case LineageCircuit::NodeKind::kTrue:
        counts[i] = {CountValue(1)};
        break;
      case LineageCircuit::NodeKind::kDecision: {
        const size_t len = static_cast<size_t>(node.vars_len) + 1;
        const auto& hi = nodes[static_cast<size_t>(node.hi)];
        const auto& lo = nodes[static_cast<size_t>(node.lo)];
        int64_t gap_hi = static_cast<int64_t>(node.vars_len) - 1 -
                         static_cast<int64_t>(hi.vars_len);
        int64_t gap_lo = static_cast<int64_t>(node.vars_len) - 1 -
                         static_cast<int64_t>(lo.vars_len);
        SHAPCQ_CHECK(gap_hi >= 0 && gap_lo >= 0);
        Poly result =
            Conv(Shift1(counts[static_cast<size_t>(node.hi)], len),
                 comb->CountRow(gap_hi), len);
        AddInto(&result, Conv(counts[static_cast<size_t>(node.lo)],
                              comb->CountRow(gap_lo), len));
        counts[i] = std::move(result);
        break;
      }
      case LineageCircuit::NodeKind::kAnd: {
        Poly result = {CountValue(1)};
        for (int child : circuit.children(node)) {
          result = Conv(result, counts[static_cast<size_t>(child)], max_len);
        }
        counts[i] = std::move(result);
        break;
      }
    }
  }

  // Accumulate per-variable rows in CountValue; convert to the public
  // BigInt representation once at the end.
  std::vector<Poly> containing(static_cast<size_t>(circuit.num_vars));
  Poly by_size(max_len);
  auto add_containing = [&containing, max_len](int v, const Poly& add) {
    Poly& acc = containing[static_cast<size_t>(v)];
    if (acc.empty()) acc.assign(max_len, CountValue());
    for (size_t i = 0; i < add.size(); ++i) {
      if (!add[i].is_zero()) acc[i] += add[i];
    }
  };

  // Top-down: ctx[n][t] = number of ways to extend any model of n to a
  // satisfying root assignment using t ones outside n's variable set.
  // Determinism (decision branches disagree on the decision variable) and
  // decomposability (AND children are variable-disjoint) make every
  // satisfying assignment trace exactly one accepting path, so the
  // context-weighted counts partition the model set exactly.
  const size_t root = static_cast<size_t>(circuit.root);
  std::vector<Poly> ctx(nodes.size());
  {
    // Virtual edge into the root for variables outside the root's set
    // (possible when the universe exceeds the formula's variables).
    std::vector<int> all(static_cast<size_t>(circuit.num_vars));
    for (int v = 0; v < circuit.num_vars; ++v) {
      all[static_cast<size_t>(v)] = v;
    }
    const LineageCircuit::Span all_span = {all.data(),
                                           static_cast<int32_t>(all.size())};
    std::vector<int> gap = GapVars(all_span, circuit.vars(nodes[root]), -1);
    const int64_t g = static_cast<int64_t>(gap.size());
    ctx[root] = Poly(comb->CountRow(g));
    Poly total = Conv(counts[root], ctx[root], max_len);
    for (size_t k = 0; k < total.size(); ++k) by_size[k] = total[k];
    if (g > 0) {
      Poly gap_models = Shift1(
          Conv(counts[root], comb->CountRow(g - 1), max_len), max_len);
      for (int u : gap) add_containing(u, gap_models);
    }
  }

  for (size_t i = root + 1; i-- > 2;) {
    if (i >= nodes.size() || ctx[i].empty()) continue;
    const LineageCircuit::Node& node = nodes[i];
    if (node.kind == LineageCircuit::NodeKind::kDecision) {
      const auto& hi = nodes[static_cast<size_t>(node.hi)];
      const auto& lo = nodes[static_cast<size_t>(node.lo)];
      std::vector<int> gap_hi =
          GapVars(circuit.vars(node), circuit.vars(hi), node.var);
      std::vector<int> gap_lo =
          GapVars(circuit.vars(node), circuit.vars(lo), node.var);
      const int64_t gh = static_cast<int64_t>(gap_hi.size());
      const int64_t gl = static_cast<int64_t>(gap_lo.size());
      // hi branch: every assignment through it sets the decision variable.
      Poly through_hi =
          Shift1(Conv(ctx[i], counts[static_cast<size_t>(node.hi)], max_len),
                 max_len);
      add_containing(node.var,
                     Conv(through_hi, comb->CountRow(gh), max_len));
      if (gh > 0) {
        Poly gap_models = Conv(Shift1(through_hi, max_len),
                               comb->CountRow(gh - 1), max_len);
        for (int u : gap_hi) add_containing(u, gap_models);
      }
      AddInto(&ctx[static_cast<size_t>(node.hi)],
              Conv(Shift1(ctx[i], max_len), comb->CountRow(gh), max_len));
      // lo branch: the decision variable is 0; only gap variables add
      // ones outside the child here.
      if (gl > 0) {
        Poly through_lo =
            Conv(ctx[i], counts[static_cast<size_t>(node.lo)], max_len);
        Poly gap_models = Conv(Shift1(through_lo, max_len),
                               comb->CountRow(gl - 1), max_len);
        for (int u : gap_lo) add_containing(u, gap_models);
      }
      AddInto(&ctx[static_cast<size_t>(node.lo)],
              Conv(ctx[i], comb->CountRow(gl), max_len));
    } else if (node.kind == LineageCircuit::NodeKind::kAnd) {
      const LineageCircuit::Span children = circuit.children(node);
      const size_t r = static_cast<size_t>(children.size());
      // Prefix/suffix products of sibling counts: child c's context is
      // ctx ⊛ (product of every sibling's count vector).
      std::vector<Poly> prefix(r + 1);
      std::vector<Poly> suffix(r + 1);
      prefix[0] = {CountValue(1)};
      suffix[r] = {CountValue(1)};
      for (size_t c = 0; c < r; ++c) {
        prefix[c + 1] =
            Conv(prefix[c],
                 counts[static_cast<size_t>(children[static_cast<int32_t>(c)])],
                 max_len);
      }
      for (size_t c = r; c-- > 0;) {
        suffix[c] =
            Conv(suffix[c + 1],
                 counts[static_cast<size_t>(children[static_cast<int32_t>(c)])],
                 max_len);
      }
      for (size_t c = 0; c < r; ++c) {
        AddInto(&ctx[static_cast<size_t>(children[static_cast<int32_t>(c)])],
                Conv(ctx[i], Conv(prefix[c], suffix[c + 1], max_len),
                     max_len));
      }
    }
  }

  // Convert the CountValue accumulators to the public BigInt rows.
  // Variables with no accumulated vector never occur in a model: give them
  // explicit zero rows so consumers can index uniformly.
  CircuitModelCounts result;
  result.by_size.reserve(max_len);
  for (const CountValue& v : by_size) result.by_size.push_back(v.ToBigInt());
  result.containing.resize(static_cast<size_t>(circuit.num_vars));
  for (size_t v = 0; v < containing.size(); ++v) {
    std::vector<BigInt>& row = result.containing[v];
    if (containing[v].empty()) {
      row.assign(max_len, BigInt());
    } else {
      row.reserve(max_len);
      for (const CountValue& c : containing[v]) row.push_back(c.ToBigInt());
    }
  }
  return result;
}

}  // namespace shapcq
