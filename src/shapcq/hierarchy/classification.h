// Hierarchy classification of conjunctive queries (Section 2 of the paper).
//
// A CQ Q is hierarchical w.r.t. a variable set V if for all x, y in V the
// atom sets atoms(Q,x) and atoms(Q,y) are nested or disjoint. The paper's
// dichotomies are stated in terms of four nested classes:
//
//   sq-hierarchical ⊆ q-hierarchical ⊆ all-hierarchical ⊆ ∃-hierarchical
//
// * ∃-hierarchical: hierarchical w.r.t. the existential variables.
// * all-hierarchical: hierarchical w.r.t. all variables.
// * q-hierarchical: all-hierarchical, and there is no existential x and
//   free y with atoms(Q,y) ⊊ atoms(Q,x)  [Berkholz-Keppeler-Schweikardt].
// * sq-hierarchical: all-hierarchical, and no *free* variable has an atom
//   set strictly contained in that of any other variable (Section 6).
//
// All classes coincide for Boolean CQs.

#ifndef SHAPCQ_HIERARCHY_CLASSIFICATION_H_
#define SHAPCQ_HIERARCHY_CLASSIFICATION_H_

#include <string>
#include <vector>

#include "shapcq/query/cq.h"

namespace shapcq {

// True iff atoms(Q,x) and atoms(Q,y) are nested or disjoint for all
// x, y in `variables`.
bool IsHierarchicalWrt(const ConjunctiveQuery& q,
                       const std::vector<std::string>& variables);

bool IsExistsHierarchical(const ConjunctiveQuery& q);
bool IsAllHierarchical(const ConjunctiveQuery& q);
bool IsQHierarchical(const ConjunctiveQuery& q);
bool IsSqHierarchical(const ConjunctiveQuery& q);

// The most specific class a query belongs to; the classes are linearly
// ordered by containment. kGeneral means not even ∃-hierarchical.
enum class HierarchyClass {
  kGeneral = 0,
  kExistsHierarchical = 1,
  kAllHierarchical = 2,
  kQHierarchical = 3,
  kSqHierarchical = 4,
};

HierarchyClass Classify(const ConjunctiveQuery& q);

// "general", "exists-hierarchical", ...
const char* HierarchyClassName(HierarchyClass c);

// True if `query_class` is at least as specific as `required`
// (e.g., an sq-hierarchical query is also q-hierarchical).
bool AtLeast(HierarchyClass query_class, HierarchyClass required);

}  // namespace shapcq

#endif  // SHAPCQ_HIERARCHY_CLASSIFICATION_H_
