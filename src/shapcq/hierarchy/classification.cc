#include "shapcq/hierarchy/classification.h"

#include <algorithm>
#include <unordered_map>

#include "shapcq/util/check.h"

namespace shapcq {

namespace {

// Containment relation over sorted atom-index vectors.
bool IsSubset(const std::vector<int>& a, const std::vector<int>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

bool AreDisjoint(const std::vector<int>& a, const std::vector<int>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return false;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return true;
}

// atoms(Q, x) for every variable of Q, built in one pass over the body.
// Classify needs these sets in all four class checks (and plan compilation
// runs Classify on every cache miss), so they are computed once and shared
// instead of one body scan per (check, variable) pair.
class VariableAtomSets {
 public:
  explicit VariableAtomSets(const ConjunctiveQuery& q) {
    const std::vector<std::string>& variables = q.variables();
    sets_.resize(variables.size());
    index_.reserve(variables.size());
    for (size_t v = 0; v < variables.size(); ++v) index_.emplace(variables[v], v);
    const std::vector<Atom>& atoms = q.atoms();
    for (int a = 0; a < static_cast<int>(atoms.size()); ++a) {
      for (const Term& term : atoms[static_cast<size_t>(a)].terms) {
        if (!term.is_variable()) continue;
        std::vector<int>& set = sets_[index_.at(term.variable())];
        // Atoms are visited in ascending order; repeated occurrences of a
        // variable within one atom collapse to one entry.
        if (set.empty() || set.back() != a) set.push_back(a);
      }
    }
  }

  // Sorted atoms(Q, x); empty for names that are not variables of Q
  // (matching ConjunctiveQuery::AtomsContaining on unknown names).
  const std::vector<int>& of(const std::string& name) const {
    auto it = index_.find(name);
    if (it == index_.end()) return empty_;
    return sets_[it->second];
  }

 private:
  std::unordered_map<std::string, size_t> index_;
  std::vector<std::vector<int>> sets_;
  std::vector<int> empty_;
};

bool HierarchicalWrt(const VariableAtomSets& sets,
                     const std::vector<std::string>& variables) {
  for (size_t i = 0; i < variables.size(); ++i) {
    for (size_t j = i + 1; j < variables.size(); ++j) {
      const std::vector<int>& a = sets.of(variables[i]);
      const std::vector<int>& b = sets.of(variables[j]);
      if (!IsSubset(a, b) && !IsSubset(b, a) && !AreDisjoint(a, b)) {
        return false;
      }
    }
  }
  return true;
}

// No existential x and free y with atoms(Q,y) ⊊ atoms(Q,x)
// [Berkholz-Keppeler-Schweikardt].
bool QCondition(const ConjunctiveQuery& q, const VariableAtomSets& sets) {
  for (const std::string& x : q.existential_variables()) {
    const std::vector<int>& atoms_x = sets.of(x);
    for (const std::string& y : q.free_variables()) {
      const std::vector<int>& atoms_y = sets.of(y);
      if (atoms_y.size() < atoms_x.size() && IsSubset(atoms_y, atoms_x)) {
        return false;
      }
    }
  }
  return true;
}

// No free y whose atom set is strictly contained in that of any variable
// (Section 6).
bool SqCondition(const ConjunctiveQuery& q, const VariableAtomSets& sets) {
  for (const std::string& y : q.free_variables()) {
    const std::vector<int>& atoms_y = sets.of(y);
    for (const std::string& x : q.variables()) {
      if (x == y) continue;
      const std::vector<int>& atoms_x = sets.of(x);
      if (atoms_y.size() < atoms_x.size() && IsSubset(atoms_y, atoms_x)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

bool IsHierarchicalWrt(const ConjunctiveQuery& q,
                       const std::vector<std::string>& variables) {
  return HierarchicalWrt(VariableAtomSets(q), variables);
}

bool IsExistsHierarchical(const ConjunctiveQuery& q) {
  return HierarchicalWrt(VariableAtomSets(q), q.existential_variables());
}

bool IsAllHierarchical(const ConjunctiveQuery& q) {
  return HierarchicalWrt(VariableAtomSets(q), q.variables());
}

bool IsQHierarchical(const ConjunctiveQuery& q) {
  VariableAtomSets sets(q);
  return HierarchicalWrt(sets, q.variables()) && QCondition(q, sets);
}

bool IsSqHierarchical(const ConjunctiveQuery& q) {
  VariableAtomSets sets(q);
  return HierarchicalWrt(sets, q.variables()) && SqCondition(q, sets);
}

HierarchyClass Classify(const ConjunctiveQuery& q) {
  VariableAtomSets sets(q);
  if (!HierarchicalWrt(sets, q.existential_variables())) {
    return HierarchyClass::kGeneral;
  }
  if (!HierarchicalWrt(sets, q.variables())) {
    return HierarchyClass::kExistsHierarchical;
  }
  if (!QCondition(q, sets)) return HierarchyClass::kAllHierarchical;
  if (!SqCondition(q, sets)) return HierarchyClass::kQHierarchical;
  return HierarchyClass::kSqHierarchical;
}

const char* HierarchyClassName(HierarchyClass c) {
  switch (c) {
    case HierarchyClass::kGeneral:
      return "general";
    case HierarchyClass::kExistsHierarchical:
      return "exists-hierarchical";
    case HierarchyClass::kAllHierarchical:
      return "all-hierarchical";
    case HierarchyClass::kQHierarchical:
      return "q-hierarchical";
    case HierarchyClass::kSqHierarchical:
      return "sq-hierarchical";
  }
  SHAPCQ_UNREACHABLE();
}

bool AtLeast(HierarchyClass query_class, HierarchyClass required) {
  return static_cast<int>(query_class) >= static_cast<int>(required);
}

}  // namespace shapcq
