#include "shapcq/hierarchy/classification.h"

#include <algorithm>

#include "shapcq/util/check.h"

namespace shapcq {

namespace {

// Containment relation over sorted atom-index vectors.
bool IsSubset(const std::vector<int>& a, const std::vector<int>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

bool AreDisjoint(const std::vector<int>& a, const std::vector<int>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return false;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return true;
}

}  // namespace

bool IsHierarchicalWrt(const ConjunctiveQuery& q,
                       const std::vector<std::string>& variables) {
  std::vector<std::vector<int>> atom_sets;
  atom_sets.reserve(variables.size());
  for (const std::string& variable : variables) {
    atom_sets.push_back(q.AtomsContaining(variable));
  }
  for (size_t i = 0; i < atom_sets.size(); ++i) {
    for (size_t j = i + 1; j < atom_sets.size(); ++j) {
      const std::vector<int>& a = atom_sets[i];
      const std::vector<int>& b = atom_sets[j];
      if (!IsSubset(a, b) && !IsSubset(b, a) && !AreDisjoint(a, b)) {
        return false;
      }
    }
  }
  return true;
}

bool IsExistsHierarchical(const ConjunctiveQuery& q) {
  return IsHierarchicalWrt(q, q.existential_variables());
}

bool IsAllHierarchical(const ConjunctiveQuery& q) {
  return IsHierarchicalWrt(q, q.variables());
}

bool IsQHierarchical(const ConjunctiveQuery& q) {
  if (!IsAllHierarchical(q)) return false;
  // No existential x and free y with atoms(Q,y) ⊊ atoms(Q,x).
  for (const std::string& x : q.existential_variables()) {
    std::vector<int> atoms_x = q.AtomsContaining(x);
    for (const std::string& y : q.free_variables()) {
      std::vector<int> atoms_y = q.AtomsContaining(y);
      if (atoms_y.size() < atoms_x.size() && IsSubset(atoms_y, atoms_x)) {
        return false;
      }
    }
  }
  return true;
}

bool IsSqHierarchical(const ConjunctiveQuery& q) {
  if (!IsAllHierarchical(q)) return false;
  // No free y whose atom set is strictly contained in that of any variable.
  for (const std::string& y : q.free_variables()) {
    std::vector<int> atoms_y = q.AtomsContaining(y);
    for (const std::string& x : q.variables()) {
      if (x == y) continue;
      std::vector<int> atoms_x = q.AtomsContaining(x);
      if (atoms_y.size() < atoms_x.size() && IsSubset(atoms_y, atoms_x)) {
        return false;
      }
    }
  }
  return true;
}

HierarchyClass Classify(const ConjunctiveQuery& q) {
  if (!IsExistsHierarchical(q)) return HierarchyClass::kGeneral;
  if (!IsAllHierarchical(q)) return HierarchyClass::kExistsHierarchical;
  if (!IsQHierarchical(q)) return HierarchyClass::kAllHierarchical;
  if (!IsSqHierarchical(q)) return HierarchyClass::kQHierarchical;
  return HierarchyClass::kSqHierarchical;
}

const char* HierarchyClassName(HierarchyClass c) {
  switch (c) {
    case HierarchyClass::kGeneral:
      return "general";
    case HierarchyClass::kExistsHierarchical:
      return "exists-hierarchical";
    case HierarchyClass::kAllHierarchical:
      return "all-hierarchical";
    case HierarchyClass::kQHierarchical:
      return "q-hierarchical";
    case HierarchyClass::kSqHierarchical:
      return "sq-hierarchical";
  }
  SHAPCQ_UNREACHABLE();
}

bool AtLeast(HierarchyClass query_class, HierarchyClass required) {
  return static_cast<int>(query_class) >= static_cast<int>(required);
}

}  // namespace shapcq
