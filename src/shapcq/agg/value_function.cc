#include "shapcq/agg/value_function.h"

#include <algorithm>
#include <atomic>

#include "shapcq/util/check.h"

namespace shapcq {

namespace {

uint64_t NextValueFunctionId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

ValueFunction::ValueFunction() : instance_id_(NextValueFunctionId()) {}

std::string ValueFunction::FingerprintToken() const {
  // Opaque functions get an identity-based token so a plan cache never
  // conflates two distinct callbacks that happen to share a display name.
  // The id is monotonic for the process lifetime — unlike a raw address,
  // it cannot recur after the object is destroyed.
  return ToString() + "@" + std::to_string(instance_id_);
}

namespace {

class ConstantTau : public ValueFunction {
 public:
  explicit ConstantTau(Rational c) : c_(std::move(c)) {}
  Rational Evaluate(const Tuple&) const override { return c_; }
  std::vector<int> DependsOn() const override { return {}; }
  std::string ToString() const override {
    return "const(" + c_.ToString() + ")";
  }
  std::string FingerprintToken() const override { return ToString(); }
  bool HasCanonicalFingerprint() const override { return true; }

 private:
  Rational c_;
};

class TauId : public ValueFunction {
 public:
  explicit TauId(int head_index) : head_index_(head_index) {
    SHAPCQ_CHECK(head_index >= 0);
  }
  Rational Evaluate(const Tuple& answer) const override {
    SHAPCQ_CHECK(head_index_ < static_cast<int>(answer.size()));
    return answer[static_cast<size_t>(head_index_)].AsRational();
  }
  std::vector<int> DependsOn() const override { return {head_index_}; }
  bool is_injective() const override { return true; }
  std::string ToString() const override {
    return "tau_id^" + std::to_string(head_index_ + 1);
  }
  std::string FingerprintToken() const override { return ToString(); }
  bool HasCanonicalFingerprint() const override { return true; }

 private:
  int head_index_;
};

class TauGreaterThan : public ValueFunction {
 public:
  TauGreaterThan(int head_index, Rational b)
      : head_index_(head_index), b_(std::move(b)) {
    SHAPCQ_CHECK(head_index >= 0);
  }
  Rational Evaluate(const Tuple& answer) const override {
    SHAPCQ_CHECK(head_index_ < static_cast<int>(answer.size()));
    return answer[static_cast<size_t>(head_index_)].AsRational() > b_
               ? Rational(1)
               : Rational(0);
  }
  std::vector<int> DependsOn() const override { return {head_index_}; }
  std::string ToString() const override {
    return "tau_>" + b_.ToString() + "^" + std::to_string(head_index_ + 1);
  }
  std::string FingerprintToken() const override { return ToString(); }
  bool HasCanonicalFingerprint() const override { return true; }

 private:
  int head_index_;
  Rational b_;
};

class TauReLU : public ValueFunction {
 public:
  explicit TauReLU(int head_index) : head_index_(head_index) {
    SHAPCQ_CHECK(head_index >= 0);
  }
  Rational Evaluate(const Tuple& answer) const override {
    SHAPCQ_CHECK(head_index_ < static_cast<int>(answer.size()));
    Rational v = answer[static_cast<size_t>(head_index_)].AsRational();
    return v > Rational(0) ? v : Rational(0);
  }
  std::vector<int> DependsOn() const override { return {head_index_}; }
  std::string ToString() const override {
    return "tau_ReLU^" + std::to_string(head_index_ + 1);
  }
  std::string FingerprintToken() const override { return ToString(); }
  bool HasCanonicalFingerprint() const override { return true; }

 private:
  int head_index_;
};

class ComposedTau : public ValueFunction {
 public:
  ComposedTau(std::function<Rational(const Rational&)> gamma,
              ValueFunctionPtr inner, std::string name)
      : gamma_(std::move(gamma)), inner_(std::move(inner)),
        name_(std::move(name)) {
    SHAPCQ_CHECK(inner_ != nullptr);
  }
  Rational Evaluate(const Tuple& answer) const override {
    return gamma_(inner_->Evaluate(answer));
  }
  std::vector<int> DependsOn() const override { return inner_->DependsOn(); }
  std::string ToString() const override {
    return name_ + " o " + inner_->ToString();
  }

 private:
  std::function<Rational(const Rational&)> gamma_;
  ValueFunctionPtr inner_;
  std::string name_;
};

class CallbackTau : public ValueFunction {
 public:
  CallbackTau(std::function<Rational(const Tuple&)> fn,
              std::vector<int> depends_on, std::string name)
      : fn_(std::move(fn)), depends_on_(std::move(depends_on)),
        name_(std::move(name)) {}
  Rational Evaluate(const Tuple& answer) const override { return fn_(answer); }
  std::vector<int> DependsOn() const override { return depends_on_; }
  std::string ToString() const override { return name_; }

 private:
  std::function<Rational(const Tuple&)> fn_;
  std::vector<int> depends_on_;
  std::string name_;
};

}  // namespace

ValueFunctionPtr MakeConstantTau(Rational c) {
  return std::make_shared<ConstantTau>(std::move(c));
}

ValueFunctionPtr MakeTauId(int head_index) {
  return std::make_shared<TauId>(head_index);
}

ValueFunctionPtr MakeTauGreaterThan(int head_index, Rational b) {
  return std::make_shared<TauGreaterThan>(head_index, std::move(b));
}

ValueFunctionPtr MakeTauReLU(int head_index) {
  return std::make_shared<TauReLU>(head_index);
}

ValueFunctionPtr MakeComposedTau(
    std::function<Rational(const Rational&)> gamma, ValueFunctionPtr inner,
    std::string name) {
  return std::make_shared<ComposedTau>(std::move(gamma), std::move(inner),
                                       std::move(name));
}

ValueFunctionPtr MakeCallbackTau(std::function<Rational(const Tuple&)> fn,
                                 std::vector<int> depends_on,
                                 std::string name) {
  return std::make_shared<CallbackTau>(std::move(fn), std::move(depends_on),
                                       std::move(name));
}

namespace {

// Parses the 1-based "^<i>" head-index suffix of a tau token.
StatusOr<int> ParseHeadIndexSuffix(std::string_view digits) {
  if (digits.empty()) return InvalidArgumentError("missing head index");
  int value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9' || value > 100000000) {
      return InvalidArgumentError("bad head index in tau token");
    }
    value = value * 10 + (c - '0');
  }
  if (value > 100000000) {
    return InvalidArgumentError("bad head index in tau token");
  }
  if (value < 1) return InvalidArgumentError("head index must be >= 1");
  return value - 1;
}

}  // namespace

StatusOr<ValueFunctionPtr> ParseCanonicalTauToken(std::string_view token) {
  constexpr std::string_view kConstPrefix = "const(";
  constexpr std::string_view kIdPrefix = "tau_id^";
  constexpr std::string_view kGreaterPrefix = "tau_>";
  constexpr std::string_view kReluPrefix = "tau_ReLU^";
  if (token.substr(0, kConstPrefix.size()) == kConstPrefix &&
      !token.empty() && token.back() == ')') {
    StatusOr<Rational> c = Rational::FromString(token.substr(
        kConstPrefix.size(), token.size() - kConstPrefix.size() - 1));
    if (!c.ok()) return c.status();
    return MakeConstantTau(std::move(c).value());
  }
  if (token.substr(0, kIdPrefix.size()) == kIdPrefix) {
    StatusOr<int> index =
        ParseHeadIndexSuffix(token.substr(kIdPrefix.size()));
    if (!index.ok()) return index.status();
    return MakeTauId(*index);
  }
  if (token.substr(0, kReluPrefix.size()) == kReluPrefix) {
    StatusOr<int> index =
        ParseHeadIndexSuffix(token.substr(kReluPrefix.size()));
    if (!index.ok()) return index.status();
    return MakeTauReLU(*index);
  }
  if (token.substr(0, kGreaterPrefix.size()) == kGreaterPrefix) {
    // The threshold may not contain '^' (rational rendering), so the last
    // '^' separates it from the head index.
    size_t caret = token.rfind('^');
    if (caret == std::string_view::npos || caret <= kGreaterPrefix.size()) {
      return InvalidArgumentError("malformed tau_> token");
    }
    StatusOr<Rational> b = Rational::FromString(
        token.substr(kGreaterPrefix.size(), caret - kGreaterPrefix.size()));
    if (!b.ok()) return b.status();
    StatusOr<int> index = ParseHeadIndexSuffix(token.substr(caret + 1));
    if (!index.ok()) return index.status();
    return MakeTauGreaterThan(*index, std::move(b).value());
  }
  return InvalidArgumentError("not a canonical tau token: " +
                              std::string(token));
}

std::vector<int> LocalizationAtoms(const ConjunctiveQuery& q,
                                   const ValueFunction& tau) {
  std::vector<int> depends_on = tau.DependsOn();
  std::vector<int> result;
  for (int a = 0; a < static_cast<int>(q.atoms().size()); ++a) {
    const Atom& atom = q.atoms()[static_cast<size_t>(a)];
    bool covers_all = true;
    for (int position : depends_on) {
      SHAPCQ_CHECK(position >= 0 && position < q.arity());
      const std::string& head_var = q.head()[static_cast<size_t>(position)];
      if (!atom.ContainsVariable(head_var)) {
        covers_all = false;
        break;
      }
    }
    if (covers_all) result.push_back(a);
  }
  return result;
}

Rational EvaluateTauOnFact(const ConjunctiveQuery& q, int atom_index,
                           const ValueFunction& tau, const Tuple& fact_args) {
  SHAPCQ_CHECK(atom_index >= 0 &&
               atom_index < static_cast<int>(q.atoms().size()));
  const Atom& atom = q.atoms()[static_cast<size_t>(atom_index)];
  SHAPCQ_CHECK(static_cast<int>(fact_args.size()) == atom.arity());
  Tuple answer(static_cast<size_t>(q.arity()), Value(0));
  for (int position : tau.DependsOn()) {
    const std::string& head_var = q.head()[static_cast<size_t>(position)];
    std::vector<int> atom_positions = atom.PositionsOf(head_var);
    SHAPCQ_CHECK(!atom_positions.empty() &&
                 "tau is not localized on this atom");
    answer[static_cast<size_t>(position)] =
        fact_args[static_cast<size_t>(atom_positions[0])];
  }
  return tau.Evaluate(answer);
}

}  // namespace shapcq
