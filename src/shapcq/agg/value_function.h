// Value functions τ : Const^ar(Q) -> Q (rationals).
//
// A value function maps each query answer to a number. The paper's
// algorithms assume τ is *localized*: determined by the tuple of a single
// atom of the query. Here localization is a derived property: each value
// function declares which head positions it depends on (DependsOn), and
// LocalizationAtoms(q, τ) lists the atoms containing all of those head
// variables. τ ≡ c depends on nothing and is localized on every atom.
//
// Built-ins match the paper's Equations (2)-(4):
//   τ_id^i(t)   = t[i]
//   τ_{>b}^i(t) = 1 if t[i] > b else 0
//   τ_ReLU^i(t) = t[i] if t[i] > 0 else 0

#ifndef SHAPCQ_AGG_VALUE_FUNCTION_H_
#define SHAPCQ_AGG_VALUE_FUNCTION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "shapcq/data/value.h"
#include "shapcq/query/cq.h"
#include "shapcq/util/rational.h"

namespace shapcq {

class ValueFunction {
 public:
  virtual ~ValueFunction() = default;

  // The τ-value of an answer tuple.
  virtual Rational Evaluate(const Tuple& answer) const = 0;

  // Head positions (0-based) the value depends on; empty for constants.
  // Positions outside this list never affect Evaluate.
  virtual std::vector<int> DependsOn() const = 0;

  // True if the function is injective on the values of its depended
  // positions (e.g. τ_id). Enables the Section 7.1 rewrite of
  // CDist ∘ τ ∘ Q to Count ∘ τ ∘ Q for unary heads, where distinct answers
  // are guaranteed distinct values. Conservative default: false.
  virtual bool is_injective() const { return false; }

  virtual std::string ToString() const = 0;

  // Token used in plan fingerprints (shapley/plan.h). Contract: two value
  // functions with equal tokens must be semantically identical (same
  // Evaluate on every tuple, same DependsOn/is_injective), so a plan cached
  // under one may serve the other. The built-ins (const, id, >b, ReLU)
  // derive the token from their parameters; functions wrapping opaque
  // callbacks (MakeComposedTau, MakeCallbackTau) keep the default, which
  // appends a process-unique instance id — such taus never share cached
  // plans, and the id (unlike a raw address) can never be reused by a
  // later allocation.
  virtual std::string FingerprintToken() const;

  // True when FingerprintToken is derived purely from parameters (the
  // built-ins above). Identity-based tokens return false; the PlanCache
  // then compiles without inserting, so per-request callback taus cannot
  // grow the cache without bound.
  virtual bool HasCanonicalFingerprint() const { return false; }

 protected:
  ValueFunction();

 private:
  // Monotonic per-construction id backing the default FingerprintToken.
  const uint64_t instance_id_;
};

using ValueFunctionPtr = std::shared_ptr<const ValueFunction>;

// τ ≡ c.
ValueFunctionPtr MakeConstantTau(Rational c);
// τ_id^i: the i-th head value (must be numeric at evaluation time).
ValueFunctionPtr MakeTauId(int head_index);
// τ_{>b}^i.
ValueFunctionPtr MakeTauGreaterThan(int head_index, Rational b);
// τ_ReLU^i.
ValueFunctionPtr MakeTauReLU(int head_index);
// γ ∘ τ for a user function γ (Theorem 7.1 experiments); `name` is used in
// ToString.
ValueFunctionPtr MakeComposedTau(std::function<Rational(const Rational&)> gamma,
                                 ValueFunctionPtr inner, std::string name);
// Fully general callback over the answer tuple with declared dependencies.
ValueFunctionPtr MakeCallbackTau(std::function<Rational(const Tuple&)> fn,
                                 std::vector<int> depends_on,
                                 std::string name);

// Parses a canonical FingerprintToken back into its value function —
// the inverse of FingerprintToken for the built-ins above:
//   const(<rational>)   tau_id^<i>   tau_><b>^<i>   tau_ReLU^<i>
// (head indices are 1-based in tokens, matching ToString). Tokens of
// non-canonical taus (opaque callbacks) and malformed text fail with
// INVALID_ARGUMENT. Used by the persisted-plan loader (persist/artifact.h)
// to reconstruct plans from their recorded fingerprints.
StatusOr<ValueFunctionPtr> ParseCanonicalTauToken(std::string_view token);

// Indices of the atoms of `q` on which `tau` is localized: atoms containing
// every head variable that `tau` depends on. Empty if none (then `tau` is
// not localized and only brute-force engines apply).
std::vector<int> LocalizationAtoms(const ConjunctiveQuery& q,
                                   const ValueFunction& tau);

// Evaluates τ on a fact of atom `atom_index`: the answer positions that τ
// depends on are read off the fact (via the atom's variables); the rest are
// filled with 0. Requires that `atom_index` is a localization atom of τ.
Rational EvaluateTauOnFact(const ConjunctiveQuery& q, int atom_index,
                           const ValueFunction& tau, const Tuple& fact_args);

}  // namespace shapcq

#endif  // SHAPCQ_AGG_VALUE_FUNCTION_H_
