// Textual specs for aggregates and value functions.
//
// One small grammar shared by every text-facing entry point — the CLI
// (examples/shapcq_cli.cc), the daemon's request protocol
// (serve/protocol.h), and the journal replay harness — so a request means
// the same thing everywhere and round-trips through the journal:
//
//   aggregates      : sum count cdist min max avg median qnt:<a>/<b> dup
//   value functions : id:<i>  relu:<i>  gt:<i>:<b>  const:<c>   (1-based i)
//
// Only the parameter-derived τ constructors are reachable from text —
// exactly the ones with canonical fingerprints, so every text-built
// AggregateQuery is PlanCache-shareable.

#ifndef SHAPCQ_AGG_SPEC_H_
#define SHAPCQ_AGG_SPEC_H_

#include <string>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/util/status.h"

namespace shapcq {

// Parses an aggregate spec ("sum", "qnt:1/3", ...). INVALID_ARGUMENT on
// anything else.
StatusOr<AggregateFunction> ParseAggregateSpec(const std::string& text);

// Parses a value-function spec ("id:2", "gt:1:40000", "const:1", ...).
// Head indexes are 1-based in the text and 0-based in the constructors.
StatusOr<ValueFunctionPtr> ParseTauSpec(const std::string& text);

}  // namespace shapcq

#endif  // SHAPCQ_AGG_SPEC_H_
