#include "shapcq/agg/spec.h"

#include "shapcq/util/bigint.h"
#include "shapcq/util/rational.h"

namespace shapcq {

StatusOr<AggregateFunction> ParseAggregateSpec(const std::string& text) {
  if (text == "sum") return AggregateFunction::Sum();
  if (text == "count") return AggregateFunction::Count();
  if (text == "cdist") return AggregateFunction::CountDistinct();
  if (text == "min") return AggregateFunction::Min();
  if (text == "max") return AggregateFunction::Max();
  if (text == "avg") return AggregateFunction::Avg();
  if (text == "median") return AggregateFunction::Median();
  if (text == "dup") return AggregateFunction::HasDuplicates();
  if (text.rfind("qnt:", 0) == 0) {
    StatusOr<Rational> q = Rational::FromString(text.substr(4));
    if (!q.ok()) return q.status();
    if (!(*q > Rational(0) && *q < Rational(1))) {
      return InvalidArgumentError("quantile must be in (0,1)");
    }
    return AggregateFunction::Quantile(*q);
  }
  return InvalidArgumentError("unknown aggregate: " + text);
}

StatusOr<ValueFunctionPtr> ParseTauSpec(const std::string& text) {
  auto index_after = [&text](size_t prefix) -> StatusOr<int> {
    StatusOr<BigInt> i = BigInt::FromString(text.substr(prefix));
    if (!i.ok()) return i.status();
    if (i->ToInt64() < 1) return InvalidArgumentError("1-based index");
    return static_cast<int>(i->ToInt64()) - 1;
  };
  if (text.rfind("id:", 0) == 0) {
    StatusOr<int> i = index_after(3);
    if (!i.ok()) return i.status();
    return MakeTauId(*i);
  }
  if (text.rfind("relu:", 0) == 0) {
    StatusOr<int> i = index_after(5);
    if (!i.ok()) return i.status();
    return MakeTauReLU(*i);
  }
  if (text.rfind("gt:", 0) == 0) {
    size_t second_colon = text.find(':', 3);
    if (second_colon == std::string::npos) {
      return InvalidArgumentError("expected gt:<i>:<b>");
    }
    StatusOr<BigInt> i = BigInt::FromString(text.substr(3, second_colon - 3));
    if (!i.ok()) return i.status();
    if (i->ToInt64() < 1) return InvalidArgumentError("1-based index");
    StatusOr<Rational> b = Rational::FromString(text.substr(second_colon + 1));
    if (!b.ok()) return b.status();
    return MakeTauGreaterThan(static_cast<int>(i->ToInt64()) - 1, *b);
  }
  if (text.rfind("const:", 0) == 0) {
    StatusOr<Rational> c = Rational::FromString(text.substr(6));
    if (!c.ok()) return c.status();
    return MakeConstantTau(*c);
  }
  return InvalidArgumentError("unknown value function: " + text);
}

}  // namespace shapcq
