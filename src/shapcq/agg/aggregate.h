// Aggregate functions α : Bags(Q) -> Q and aggregate queries A = α ∘ τ ∘ Q.
//
// Conventions follow Section 2 of the paper: α(∅) = 0 for every aggregate,
// and Qnt_q(B) = (x_⌈q|B|⌉ + x_⌊q|B|+1⌋) / 2 where x_i is the i-th smallest
// element of B (so Median = Qnt_{1/2} matches the usual convention). Dup
// ("has-duplicates") is 1 iff some element of the bag has multiplicity >= 2.

#ifndef SHAPCQ_AGG_AGGREGATE_H_
#define SHAPCQ_AGG_AGGREGATE_H_

#include <string>
#include <vector>

#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/cq.h"
#include "shapcq/util/rational.h"

namespace shapcq {

enum class AggKind {
  kSum,
  kCount,
  kCountDistinct,
  kMin,
  kMax,
  kAvg,
  kQuantile,       // parameterized by q in (0, 1)
  kHasDuplicates,  // "Dup"
};

// An aggregate function (kind + quantile parameter where applicable).
class AggregateFunction {
 public:
  static AggregateFunction Sum() { return AggregateFunction(AggKind::kSum); }
  static AggregateFunction Count() {
    return AggregateFunction(AggKind::kCount);
  }
  static AggregateFunction CountDistinct() {
    return AggregateFunction(AggKind::kCountDistinct);
  }
  static AggregateFunction Min() { return AggregateFunction(AggKind::kMin); }
  static AggregateFunction Max() { return AggregateFunction(AggKind::kMax); }
  static AggregateFunction Avg() { return AggregateFunction(AggKind::kAvg); }
  // Requires 0 < q < 1.
  static AggregateFunction Quantile(Rational q);
  static AggregateFunction Median() {
    return Quantile(Rational(BigInt(1), BigInt(2)));
  }
  static AggregateFunction HasDuplicates() {
    return AggregateFunction(AggKind::kHasDuplicates);
  }

  AggKind kind() const { return kind_; }
  // The quantile parameter; requires kind() == kQuantile.
  const Rational& quantile() const;

  // Applies the aggregate to a bag given as a vector with multiplicity
  // (order irrelevant). Returns 0 on the empty bag.
  Rational Apply(const std::vector<Rational>& bag) const;

  // True if α(B) = α(B') for all nonempty bags over one singleton value
  // (Proposition 3.2's "constant per singleton" property). Holds for
  // Min/Max/CDist/Avg/Qnt; fails for Sum/Count/Dup.
  bool IsConstantPerSingleton() const;

  std::string ToString() const;

 private:
  explicit AggregateFunction(AggKind kind) : kind_(kind) {}

  AggKind kind_;
  Rational quantile_;
};

// An aggregate conjunctive query A = α ∘ τ ∘ Q.
struct AggregateQuery {
  ConjunctiveQuery query;
  ValueFunctionPtr tau;
  AggregateFunction alpha;

  // A(D) = α({{ τ(t) : t ∈ Q(D) }}).
  Rational Evaluate(const Database& db) const;
  // Same, over a precomputed answer set.
  Rational EvaluateOnAnswers(const std::vector<Tuple>& answers) const;

  std::string ToString() const;
};

}  // namespace shapcq

#endif  // SHAPCQ_AGG_AGGREGATE_H_
