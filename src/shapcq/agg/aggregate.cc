#include "shapcq/agg/aggregate.h"

#include <algorithm>
#include <map>

#include "shapcq/query/evaluator.h"
#include "shapcq/util/check.h"

namespace shapcq {

AggregateFunction AggregateFunction::Quantile(Rational q) {
  SHAPCQ_CHECK(q > Rational(0) && q < Rational(1));
  AggregateFunction alpha(AggKind::kQuantile);
  alpha.quantile_ = std::move(q);
  return alpha;
}

const Rational& AggregateFunction::quantile() const {
  SHAPCQ_CHECK(kind_ == AggKind::kQuantile);
  return quantile_;
}

Rational AggregateFunction::Apply(const std::vector<Rational>& bag) const {
  if (bag.empty()) return Rational(0);
  switch (kind_) {
    case AggKind::kSum: {
      Rational sum;
      for (const Rational& v : bag) sum += v;
      return sum;
    }
    case AggKind::kCount:
      return Rational(static_cast<int64_t>(bag.size()));
    case AggKind::kCountDistinct: {
      std::vector<Rational> sorted = bag;
      std::sort(sorted.begin(), sorted.end());
      int64_t distinct = 1;
      for (size_t i = 1; i < sorted.size(); ++i) {
        if (sorted[i] != sorted[i - 1]) ++distinct;
      }
      return Rational(distinct);
    }
    case AggKind::kMin: {
      Rational best = bag[0];
      for (const Rational& v : bag) {
        if (v < best) best = v;
      }
      return best;
    }
    case AggKind::kMax: {
      Rational best = bag[0];
      for (const Rational& v : bag) {
        if (v > best) best = v;
      }
      return best;
    }
    case AggKind::kAvg: {
      Rational sum;
      for (const Rational& v : bag) sum += v;
      return sum / Rational(static_cast<int64_t>(bag.size()));
    }
    case AggKind::kQuantile: {
      std::vector<Rational> sorted = bag;
      std::sort(sorted.begin(), sorted.end());
      int64_t n = static_cast<int64_t>(sorted.size());
      Rational qn = quantile_ * Rational(n);
      int64_t i1 = qn.Ceil().ToInt64();                      // ⌈q|B|⌉
      int64_t i2 = (qn + Rational(1)).Floor().ToInt64();     // ⌊q|B|+1⌋
      SHAPCQ_CHECK(i1 >= 1 && i1 <= n);
      SHAPCQ_CHECK(i2 >= 1 && i2 <= n);
      return (sorted[static_cast<size_t>(i1 - 1)] +
              sorted[static_cast<size_t>(i2 - 1)]) /
             Rational(2);
    }
    case AggKind::kHasDuplicates: {
      std::vector<Rational> sorted = bag;
      std::sort(sorted.begin(), sorted.end());
      for (size_t i = 1; i < sorted.size(); ++i) {
        if (sorted[i] == sorted[i - 1]) return Rational(1);
      }
      return Rational(0);
    }
  }
  SHAPCQ_UNREACHABLE();
}

bool AggregateFunction::IsConstantPerSingleton() const {
  switch (kind_) {
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kCountDistinct:
    case AggKind::kAvg:
    case AggKind::kQuantile:
      return true;
    case AggKind::kSum:
    case AggKind::kCount:
    case AggKind::kHasDuplicates:
      return false;
  }
  SHAPCQ_UNREACHABLE();
}

std::string AggregateFunction::ToString() const {
  switch (kind_) {
    case AggKind::kSum:
      return "Sum";
    case AggKind::kCount:
      return "Count";
    case AggKind::kCountDistinct:
      return "CountDistinct";
    case AggKind::kMin:
      return "Min";
    case AggKind::kMax:
      return "Max";
    case AggKind::kAvg:
      return "Avg";
    case AggKind::kQuantile:
      return "Qnt_" + quantile_.ToString();
    case AggKind::kHasDuplicates:
      return "Dup";
  }
  SHAPCQ_UNREACHABLE();
}

Rational AggregateQuery::Evaluate(const Database& db) const {
  return EvaluateOnAnswers(shapcq::Evaluate(query, db));
}

Rational AggregateQuery::EvaluateOnAnswers(
    const std::vector<Tuple>& answers) const {
  std::vector<Rational> bag;
  bag.reserve(answers.size());
  for (const Tuple& answer : answers) bag.push_back(tau->Evaluate(answer));
  return alpha.Apply(bag);
}

std::string AggregateQuery::ToString() const {
  return alpha.ToString() + " o " + tau->ToString() + " o " +
         query.ToString();
}

}  // namespace shapcq
