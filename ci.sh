#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite (including
# the bench_smoke label). Run on every PR; exits non-zero on any failure.
#
# Environment:
#   SANITIZE=asan|ubsan|tsan  build with Address-/UB-/ThreadSanitizer
#                             (separate build directory per sanitizer)
#   BUILD_TYPE=<type>    CMake build type (default Release)
#   SIMD=ON|OFF          toggle the SIMD posting-intersection kernel
#                        (default: the CMake default, ON). The sanitizer
#                        CI legs run OFF so the scalar fallback stays
#                        exercised under asan/ubsan/tsan.
#   TEST_REGEX=<regex>   run only ctest targets matching the regex
#                        (default: the whole suite). The TSan CI job uses
#                        this to focus on the threaded batching tests, the
#                        PlanCache concurrency tests (plan_test), the
#                        sharded lineage-circuit tests (lineage_test), and
#                        the daemon tests (serve_test, daemon_smoke).
set -euo pipefail

cd "$(dirname "$0")"

SANITIZE="${SANITIZE:-}"
BUILD_TYPE="${BUILD_TYPE:-Release}"
TEST_REGEX="${TEST_REGEX:-}"
SIMD="${SIMD:-}"
BUILD_DIR="build"
CMAKE_ARGS=(-DCMAKE_BUILD_TYPE="${BUILD_TYPE}")

case "${SIMD}" in
  "") ;;
  ON|OFF)
    CMAKE_ARGS+=(-DSHAPCQ_SIMD="${SIMD}")
    ;;
  *)
    echo "ci.sh: SIMD must be empty, 'ON', or 'OFF' (got '${SIMD}')" >&2
    exit 2
    ;;
esac

case "${SANITIZE}" in
  "") ;;
  asan|ubsan|tsan)
    BUILD_DIR="build-${SANITIZE}"
    CMAKE_ARGS+=(-DSHAPCQ_SANITIZE="${SANITIZE}")
    ;;
  *)
    echo "ci.sh: SANITIZE must be empty, 'asan', 'ubsan', or 'tsan' (got '${SANITIZE}')" >&2
    exit 2
    ;;
esac

if ! cmake -B "${BUILD_DIR}" -S . "${CMAKE_ARGS[@]}"; then
  echo "ci.sh: CMake configure failed (build dir: ${BUILD_DIR}," \
       "args: ${CMAKE_ARGS[*]}). Fix the configuration before building." >&2
  exit 1
fi

cmake --build "${BUILD_DIR}" -j "$(nproc)"
cd "${BUILD_DIR}"
CTEST_ARGS=(--output-on-failure -j "$(nproc)")
if [[ -n "${TEST_REGEX}" ]]; then
  CTEST_ARGS+=(-R "${TEST_REGEX}")
fi
ctest "${CTEST_ARGS[@]}"
