#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
# Run on every PR; exits non-zero on any build or test failure.
set -euo pipefail

cd "$(dirname "$0")"

cmake -B build -S .
cmake --build build -j "$(nproc)"
cd build
ctest --output-on-failure -j "$(nproc)"
