// shapcq_replay: deterministic re-execution of a shapcqd journal.
//
// Reads a binary journal written by shapcqd --journal, re-executes every
// record against the given tenant databases (warm pass through one plan
// cache, cold pass compiling per record — see src/shapcq/serve/replay.h),
// and fails loudly unless the two passes are bitwise identical and every
// re-derived plan fingerprint matches the journaled one. Exit code 0
// means the journal replays clean.
//
// Usage:
//   shapcq_replay --journal PATH --tenant NAME=DB_FILE...
//                 [--threads N] [--no-cold] [--dump] [--explain]
//
// --explain traces every warm-pass solve (obs/trace.h) and prints one
// engine-decision explanation per record — the journaled trace id (v3+)
// followed by which engines were considered, why each was rejected, and
// which one scored how many facts. Tracing never changes results, so
// the parity checks are exactly as strict with or without it.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "shapcq/data/db_io.h"
#include "shapcq/obs/trace.h"
#include "shapcq/serve/journal.h"
#include "shapcq/serve/replay.h"

using namespace shapcq;  // NOLINT: tool brevity

namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --journal PATH --tenant NAME=DB_FILE...\n"
               "          [--threads N] [--no-cold] [--dump] [--explain]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::string journal_path;
  std::map<std::string, std::shared_ptr<const Database>> tenants;
  ReplayOptions options;
  bool dump = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--journal") {
      if (i + 1 >= argc) Usage(argv[0]);
      journal_path = argv[++i];
    } else if (arg == "--tenant") {
      if (i + 1 >= argc) Usage(argv[0]);
      std::string spec = argv[++i];
      size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) Usage(argv[0]);
      StatusOr<Database> db = LoadDatabaseFromFile(spec.substr(eq + 1));
      if (!db.ok()) {
        std::fprintf(stderr, "cannot load tenant %s: %s\n",
                     spec.substr(0, eq).c_str(),
                     db.status().ToString().c_str());
        return 1;
      }
      tenants[spec.substr(0, eq)] =
          std::make_shared<const Database>(std::move(db).value());
    } else if (arg == "--threads") {
      if (i + 1 >= argc) Usage(argv[0]);
      options.num_threads = std::atoi(argv[++i]);
    } else if (arg == "--no-cold") {
      options.run_cold_pass = false;
    } else if (arg == "--dump") {
      dump = true;
    } else if (arg == "--explain") {
      options.collect_explanations = true;
    } else {
      Usage(argv[0]);
    }
  }
  if (journal_path.empty()) Usage(argv[0]);

  // ReadJournalChain follows size-rotated segments (PATH, PATH.1, ...);
  // an unrotated journal is just a one-segment chain.
  StatusOr<std::vector<JournalRecord>> records = ReadJournalChain(journal_path);
  if (!records.ok()) {
    std::fprintf(stderr, "read failed: %s\n",
                 records.status().ToString().c_str());
    return 1;
  }
  std::printf("journal %s: %zu records\n", journal_path.c_str(),
              records->size());

  StatusOr<ReplayResult> replay = ReplayJournal(*records, tenants, options);
  if (!replay.ok()) {
    std::fprintf(stderr, "REPLAY FAILED: %s\n",
                 replay.status().ToString().c_str());
    return 1;
  }

  if (options.collect_explanations) {
    for (size_t i = 0; i < replay->explanations.size(); ++i) {
      const JournalRecord& record = (*records)[i];
      if (record.op != JournalOp::kSolve) continue;
      std::printf("record %zu trace=%s  %s\n", i,
                  record.trace_id != 0 ? TraceIdHex(record.trace_id).c_str()
                                       : "(pre-v3)",
                  replay->explanations[i].c_str());
    }
  }

  if (dump) {
    for (size_t i = 0; i < replay->results.size(); ++i) {
      const JournalRecord& record = (*records)[i];
      if (record.op != JournalOp::kSolve) {
        std::printf("record %zu (%s %s)\n", i,
                    record.op == JournalOp::kInsertFact ? "insert_fact"
                                                        : "delete_fact",
                    record.fact.c_str());
        continue;
      }
      std::printf("record %zu (%s):\n", i, record.request.query.c_str());
      for (const auto& [fact, result] : replay->results[i]) {
        std::printf("  fact %d  %s  [%s]\n", fact,
                    result.is_exact ? result.exact.ToString().c_str()
                                    : "(sampled)",
                    result.algorithm.c_str());
      }
    }
  }

  std::printf(
      "replayed %llu records (%llu mutations): warm %.1f ms, cold %.1f ms, "
      "%llu warm cache hits, %llu/%llu fingerprints match\n",
      static_cast<unsigned long long>(replay->records),
      static_cast<unsigned long long>(replay->mutations), replay->warm_ms,
      replay->cold_ms,
      static_cast<unsigned long long>(replay->plan_cache_hits),
      static_cast<unsigned long long>(replay->fingerprint_matches),
      static_cast<unsigned long long>(
          replay->records - replay->mutations));
  if (options.run_cold_pass) {
    std::printf("warm and cold passes bitwise identical\n");
  }
  return 0;
}
