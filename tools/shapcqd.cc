// shapcqd: the attribution daemon.
//
// Serves Shapley/Banzhaf attribution over the line-delimited JSON
// protocol (src/shapcq/serve/protocol.h) on a loopback TCP port, with a
// Prometheus /metrics endpoint on a second port. docs/OPERATIONS.md is
// the runbook.
//
// Usage:
//   shapcqd [--port N] [--metrics-port N|-1] [--workers N]
//           [--journal PATH] [--journal-max-bytes N]
//           [--artifact-dir DIR]
//           [--tenant NAME=DB_FILE]...
//           [--max-in-flight N] [--max-queue N] [--no-load-tenant]
//           [--no-mutations] [--compact-min-tombstones N]
//           [--trace off|on|full] [--log-level debug|info|warn|error|off]
//
// Ports default to 0 (ephemeral; the bound ports are printed on
// startup). Tenants load from db_io.h plain-text files and can also be
// registered over the wire (op:"load_tenant") unless --no-load-tenant.
// --journal-max-bytes rotates the journal by size (segment 0 at PATH,
// older segments at PATH.1, PATH.2, ...; 0 = never rotate).
// --artifact-dir warm-starts the plan/circuit caches from persisted
// compiled artifacts at boot and snapshots them back on shutdown;
// SIGHUP snapshots without restarting (docs/OPERATIONS.md).
// --no-mutations refuses the insert_fact/delete_fact ops;
// --compact-min-tombstones tunes the auto-compaction trigger (<= 0
// disables it).
// --trace sets the server's trace level (docs/TRACING.md; default on),
// --log-level the stderr logging threshold (default info: one
// structured line per request with its trace id). SIGUSR1 dumps the
// flight recorder — the slowest and most recent degraded/errored
// request traces — to stderr, same JSON as GET /debug/traces.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "shapcq/data/db_io.h"
#include "shapcq/obs/log.h"
#include "shapcq/serve/server.h"

using namespace shapcq;  // NOLINT: tool brevity

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_snapshot = 0;
volatile std::sig_atomic_t g_dump_traces = 0;

void HandleSignal(int) { g_stop = 1; }
void HandleHup(int) { g_snapshot = 1; }
void HandleUsr1(int) { g_dump_traces = 1; }

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port N] [--metrics-port N|-1] [--workers N]\n"
      "          [--journal PATH] [--journal-max-bytes N]\n"
      "          [--artifact-dir DIR]\n"
      "          [--tenant NAME=DB_FILE]...\n"
      "          [--max-in-flight N] [--max-queue N] [--no-load-tenant]\n"
      "          [--no-mutations] [--compact-min-tombstones N]\n"
      "          [--trace off|on|full]\n"
      "          [--log-level debug|info|warn|error|off]\n",
      argv0);
  std::exit(2);
}

int IntFlag(const char* argv0, int argc, char** argv, int* i) {
  if (*i + 1 >= argc) Usage(argv0);
  return std::atoi(argv[++*i]);
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions options;
  // The daemon defaults to one structured stderr line per request (the
  // library default kWarn keeps in-process tests and benches quiet).
  LogLevel log_level = LogLevel::kInfo;
  struct Tenant {
    std::string name;
    std::string path;
  };
  std::vector<Tenant> tenants;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--port") {
      options.port = IntFlag(argv[0], argc, argv, &i);
    } else if (arg == "--metrics-port") {
      options.metrics_port = IntFlag(argv[0], argc, argv, &i);
    } else if (arg == "--workers") {
      options.worker_threads = IntFlag(argv[0], argc, argv, &i);
    } else if (arg == "--max-in-flight") {
      options.limits.max_in_flight = IntFlag(argv[0], argc, argv, &i);
    } else if (arg == "--max-queue") {
      options.limits.max_queue = IntFlag(argv[0], argc, argv, &i);
    } else if (arg == "--journal") {
      if (i + 1 >= argc) Usage(argv[0]);
      options.journal_path = argv[++i];
    } else if (arg == "--journal-max-bytes") {
      if (i + 1 >= argc) Usage(argv[0]);
      options.journal_max_segment_bytes =
          static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--artifact-dir") {
      if (i + 1 >= argc) Usage(argv[0]);
      options.artifact_dir = argv[++i];
    } else if (arg == "--no-load-tenant") {
      options.allow_load_tenant = false;
    } else if (arg == "--no-mutations") {
      options.allow_mutations = false;
    } else if (arg == "--compact-min-tombstones") {
      options.compact_min_tombstones = IntFlag(argv[0], argc, argv, &i);
    } else if (arg == "--trace") {
      if (i + 1 >= argc) Usage(argv[0]);
      if (!ParseTraceLevel(argv[++i], &options.trace_level)) Usage(argv[0]);
    } else if (arg == "--log-level") {
      if (i + 1 >= argc) Usage(argv[0]);
      LogLevel level;
      if (!ParseLogLevel(argv[++i], &level)) Usage(argv[0]);
      log_level = level;
    } else if (arg == "--tenant") {
      if (i + 1 >= argc) Usage(argv[0]);
      std::string spec = argv[++i];
      size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) Usage(argv[0]);
      tenants.push_back(Tenant{spec.substr(0, eq), spec.substr(eq + 1)});
    } else {
      Usage(argv[0]);
    }
  }

  SetLogLevel(log_level);

  AttributionServer server(options);
  for (const Tenant& tenant : tenants) {
    StatusOr<Database> db = LoadDatabaseFromFile(tenant.path);
    if (!db.ok()) {
      std::fprintf(stderr, "cannot load tenant %s: %s\n",
                   tenant.name.c_str(), db.status().ToString().c_str());
      return 1;
    }
    server.RegisterTenant(tenant.name, std::move(db).value());
    std::printf("tenant %-16s %s\n", tenant.name.c_str(),
                tenant.path.c_str());
  }

  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("shapcqd listening on 127.0.0.1:%d", server.port());
  if (server.metrics_port() >= 0) {
    std::printf("  (metrics http://127.0.0.1:%d/metrics)",
                server.metrics_port());
  }
  if (!options.journal_path.empty()) {
    std::printf("  journal=%s", options.journal_path.c_str());
  }
  if (!options.artifact_dir.empty()) {
    std::printf("  artifacts=%s", options.artifact_dir.c_str());
  }
  std::printf("\n");
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGHUP, HandleHup);
  std::signal(SIGUSR1, HandleUsr1);
  while (g_stop == 0) {
    if (g_snapshot != 0) {
      g_snapshot = 0;
      Status saved = server.SaveArtifacts();
      if (saved.ok()) {
        LogLine(LogLevel::kInfo, "artifact snapshot written");
      } else {
        LogLine(LogLevel::kError,
                "artifact snapshot failed: " + saved.ToString());
      }
    }
    if (g_dump_traces != 0) {
      g_dump_traces = 0;
      // The flight recorder as one stderr line — the signal-driven
      // equivalent of GET /debug/traces for setups with no metrics port.
      // The operator asked for it explicitly, so it outranks the
      // threshold: kError clears every level short of off.
      LogLine(LogLevel::kError, "flight_recorder " + server.DebugTracesJson());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::printf("shutting down (journal records: %llu)\n",
              static_cast<unsigned long long>(
                  server.journal_records_written()));
  server.Stop();
  return 0;
}
