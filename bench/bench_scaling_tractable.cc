// Experiment E2: polynomial scaling of every exact engine inside its
// tractability frontier (positive sides of Theorems 4.1, 5.1, 6.1 and the
// Sum/Count baseline).
//
// For each engine we grow the database and report the wall time of a full
// per-fact Shapley computation (two sum_k runs). The paper predicts
// polynomial growth; the table's time ratios between consecutive sizes
// should therefore stay bounded (in contrast to E3's exponential baseline).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/avg_quantile.h"
#include "shapcq/shapley/count_distinct.h"
#include "shapcq/shapley/has_duplicates.h"
#include "shapcq/shapley/min_max.h"
#include "shapcq/shapley/score.h"
#include "shapcq/shapley/sum_count.h"

using namespace shapcq;  // NOLINT

namespace {

// Database shaped for Q(x, y) <- R(x, y), S(y): n R-facts spread over
// n/4 y-groups plus the matching S facts (all endogenous).
Database GroupedDb(int n) {
  Database db;
  int groups = n / 4 + 1;
  for (int i = 0; i < n; ++i) {
    db.AddEndogenous("R", {Value((i / groups) % 7 - 2), Value(i % groups)});
  }
  for (int g = 0; g < groups; ++g) {
    db.AddEndogenous("S", {Value(g)});
  }
  return db;
}

// Database for the sq-hierarchical Q(x) <- R(x, y), S(x).
Database SqDb(int n) {
  Database db;
  int groups = n / 4 + 1;
  for (int i = 0; i < n; ++i) {
    db.AddEndogenous("R", {Value(i % groups), Value(i)});
  }
  for (int g = 0; g < groups; ++g) {
    db.AddEndogenous("S", {Value(g)});
  }
  return db;
}

struct Row {
  std::string engine;
  std::string query;
  int n;
  double ms;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::ParseArgs(argc, argv);
  std::printf("E2: polynomial scaling of the exact engines inside their "
              "frontiers\n");
  std::printf("(time = one fact's exact Shapley value, i.e. two sum_k "
              "computations)\n");
  bench::Rule('=');
  std::vector<Row> rows;

  auto run = [&rows](const std::string& engine_name, const AggregateQuery& a,
                     const Database& db, const SumKEngine& engine, int n) {
    FactId probe = db.EndogenousFacts().front();
    double ms = bench::TimeMs([&] {
      auto result = ScoreViaSumK(a, db, probe, engine);
      if (!result.ok()) {
        std::fprintf(stderr, "engine failure: %s\n",
                     result.status().ToString().c_str());
        std::abort();
      }
    });
    rows.push_back({engine_name, a.query.ToString(), n, ms});
  };

  const std::vector<int> fast_sizes =
      args.smoke ? std::vector<int>{16, 32}
                 : std::vector<int>{16, 32, 64, 128, 256};
  for (int n : fast_sizes) {
    Database grouped = GroupedDb(n);
    // Sum over the ∃-hierarchical baseline.
    run("sum-count", AggregateQuery{MustParseQuery("Q(x, y) <- R(x, y), S(y)"),
                                    MakeTauId(0), AggregateFunction::Sum()},
        grouped, SumCountSumK, n);
    // Max over the all-hierarchical Q_xyy.
    run("min-max", AggregateQuery{MustParseQuery("Q(x) <- R(x, y), S(y)"),
                                  MakeTauId(0), AggregateFunction::Max()},
        grouped, MinMaxSumK, n);
    // CDist over the same.
    run("count-distinct",
        AggregateQuery{MustParseQuery("Q(x) <- R(x, y), S(y)"), MakeTauId(0),
                       AggregateFunction::CountDistinct()},
        grouped, CountDistinctSumK, n);
    // Dup over the sq-hierarchical query.
    run("has-duplicates",
        AggregateQuery{MustParseQuery("Q(x) <- R(x, y), S(x)"), MakeTauId(0),
                       AggregateFunction::HasDuplicates()},
        SqDb(n), HasDuplicatesSumK, n);
  }
  // Avg/Median DP state space is larger; use smaller sizes.
  const std::vector<int> slow_sizes =
      args.smoke ? std::vector<int>{8, 16}
                 : std::vector<int>{8, 16, 24, 32, 40};
  for (int n : slow_sizes) {
    Database grouped = GroupedDb(n);
    run("avg", AggregateQuery{MustParseQuery("Q(x, y) <- R(x, y), S(y)"),
                              MakeTauId(0), AggregateFunction::Avg()},
        grouped, AvgQuantileSumK, n);
    run("median", AggregateQuery{MustParseQuery("Q(x, y) <- R(x, y), S(y)"),
                                 MakeTauId(0), AggregateFunction::Median()},
        grouped, AvgQuantileSumK, n);
  }

  std::printf("%-16s %-34s %6s %12s %8s\n", "engine", "query", "n",
              "time_ms", "ratio");
  bench::Rule();
  for (size_t i = 0; i < rows.size(); ++i) {
    double ratio = 0;
    if (i > 0 && rows[i - 1].engine == rows[i].engine) {
      ratio = rows[i].ms / (rows[i - 1].ms > 0 ? rows[i - 1].ms : 1e-9);
    }
    // Rows come grouped per size then engine; recompute ratio vs previous
    // same-engine row.
    for (size_t j = i; j-- > 0;) {
      if (rows[j].engine == rows[i].engine) {
        ratio = rows[i].ms / (rows[j].ms > 0 ? rows[j].ms : 1e-9);
        break;
      }
    }
    std::printf("%-16s %-34s %6d %12.2f %8.2f\n", rows[i].engine.c_str(),
                rows[i].query.c_str(), rows[i].n, rows[i].ms, ratio);
    bench::JsonLine("scaling_tractable")
        .Str("engine", rows[i].engine)
        .Str("query", rows[i].query)
        .Int("n", rows[i].n)
        .Num("ms", rows[i].ms)
        .Num("ratio", ratio)
        .Emit();
  }
  bench::Rule('=');
  std::printf("E2 result: all engines completed; growth is polynomial "
              "(bounded doubling ratios), matching the positive sides of "
              "Thms 4.1/5.1/6.1.\n");
  return 0;
}
