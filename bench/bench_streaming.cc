// Streaming attribution bench: delta solves vs mutation rate.
//
// Builds a database whose answer set is large and mostly disjoint, then
// interleaves single-fact mutations with StreamingSolver::ComputeAll at
// increasing mutation rates (mutations per solve). Reports per-solve
// latency, dirty-set size, and cache reuse in BENCH_JSON, plus a fresh
// SolverSession full solve on the same state as the non-incremental
// reference.
//
// CI regression gate: on a 1-fact mutation the dirty-answer set must be
// strictly smaller than the full answer set — if the delta path ever
// degenerates into a full sweep, this bench exits nonzero.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/session.h"
#include "shapcq/stream/streaming.h"

using namespace shapcq;  // NOLINT

namespace {

// n mostly-disjoint answers (x = i joins its private S value) plus a
// shared hub value every fourth R row also joins — some answers carry
// multi-clause lineage, so dirty re-extraction exercises both the
// clause-changed and clauses-unchanged (circuit reuse) paths.
Database MakeDb(int n) {
  Database db;
  for (int i = 0; i < n; ++i) {
    db.AddEndogenous("R", {Value(i), Value(1000 + i)});
    db.AddEndogenous("S", {Value(1000 + i)});
    if (i % 4 == 0) db.AddEndogenous("R", {Value(i), Value(2000)});
  }
  db.AddEndogenous("S", {Value(2000)});
  return db;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::ParseArgs(argc, argv);
  const std::vector<int> sizes =
      args.smoke ? std::vector<int>{12} : std::vector<int>{32, 96};
  const std::vector<int> rates = args.smoke ? std::vector<int>{1, 4}
                                            : std::vector<int>{1, 4, 16};
  const int rounds = args.smoke ? 2 : 5;

  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  std::printf("streaming attribution: dirty-answer delta solves vs fresh "
              "full solves\n");
  bench::Rule('=');

  for (int n : sizes) {
    Database db = MakeDb(n);
    AggregateQuery a{q, MakeTauId(0), AggregateFunction::Sum()};
    StreamingSolver solver(a, &db);

    double build_ms = bench::TimeMs([&] {
      auto r = solver.ComputeAll();
      if (!r.ok()) std::abort();
    });
    const uint64_t answers = solver.stats().answers_cached;

    // --- The regression gate: one mutation must NOT dirty everything. ---
    auto probe = db.FindFact("R", {Value(0), Value(1000)});
    if (!probe.ok()) std::abort();
    if (!solver.DeleteFact(*probe).ok()) std::abort();
    const size_t gate_dirty = solver.dirty_size();
    double gate_ms = bench::TimeMs([&] {
      auto r = solver.ComputeAll();
      if (!r.ok()) std::abort();
    });
    bool gate_pass = gate_dirty < answers;
    bench::JsonLine("streaming_gate")
        .Int("n", n)
        .Int("answers", static_cast<long long>(answers))
        .Int("dirty_on_one_mutation", static_cast<long long>(gate_dirty))
        .Num("solve_ms", gate_ms)
        .Bool("pass", gate_pass)
        .Emit();
    if (!gate_pass) {
      std::fprintf(stderr,
                   "FAIL: a 1-fact mutation dirtied all %llu answers — the "
                   "delta path degenerated into a full sweep\n",
                   static_cast<unsigned long long>(answers));
      return 1;
    }

    std::printf("n=%d: %llu answers, initial build %.2f ms\n", n,
                static_cast<unsigned long long>(answers), build_ms);
    std::printf("%6s %10s %12s %14s %12s\n", "rate", "dirty/solve",
                "delta (ms)", "circuits kept", "fresh (ms)");
    bench::Rule();

    int next_x = n + 1;
    std::vector<FactId> inserted;
    for (int rate : rates) {
      double delta_ms = 0;
      uint64_t dirty_total = 0;
      uint64_t circuits_before = solver.stats().circuits_reused;
      for (int round = 0; round < rounds; ++round) {
        for (int m = 0; m < rate; ++m) {
          // Alternate inserts of fresh single-answer rows with deletes of
          // rows this loop inserted earlier — every mutation is 1-fact.
          if (inserted.empty() || m % 2 == 0) {
            auto id = solver.InsertFact(
                "R", {Value(next_x), Value(1000 + (next_x % n))});
            if (!id.ok()) std::abort();
            inserted.push_back(*id);
            ++next_x;
          } else {
            FactId victim = inserted.back();
            inserted.pop_back();
            if (!solver.DeleteFact(victim).ok()) std::abort();
          }
        }
        dirty_total += solver.dirty_size();
        delta_ms += bench::TimeMs([&] {
          auto r = solver.ComputeAll();
          if (!r.ok()) std::abort();
        });
      }
      uint64_t circuits_kept =
          solver.stats().circuits_reused - circuits_before;
      // Reference: what the daemon's non-streaming path pays on the same
      // state — plan + solve from scratch.
      double fresh_ms = bench::TimeMs([&] {
        SolverSession session(a, db);
        auto r = session.ComputeAll(SolverOptions{});
        if (!r.ok()) std::abort();
      });
      double avg_dirty = static_cast<double>(dirty_total) / rounds;
      double avg_delta_ms = delta_ms / rounds;
      std::printf("%6d %10.1f %12.3f %14llu %12.3f\n", rate, avg_dirty,
                  avg_delta_ms,
                  static_cast<unsigned long long>(circuits_kept), fresh_ms);
      bench::JsonLine("streaming_mutation_rate")
          .Int("n", n)
          .Int("rate", rate)
          .Int("rounds", rounds)
          .Int("answers", static_cast<long long>(solver.stats().answers_cached))
          .Num("dirty_per_solve", avg_dirty)
          .Num("delta_solve_ms", avg_delta_ms)
          .Num("fresh_solve_ms", fresh_ms)
          .Int("circuits_reused", static_cast<long long>(circuits_kept))
          .Int("incremental_solves",
               static_cast<long long>(solver.stats().incremental_solves))
          .Int("full_rebuilds",
               static_cast<long long>(solver.stats().full_rebuilds))
          .Emit();
    }
    bench::Rule();
  }
  std::printf("gate held on every size: 1-fact dirty set < answer set\n");
  return 0;
}
