// Daemon throughput benchmark: concurrent clients against a live
// shapcqd server, with journaled traffic replayed for bitwise parity.
//
// Starts an in-process AttributionServer (ephemeral loopback ports,
// journaling on), registers a set of generated tenant databases, then
// drives N client threads each issuing synchronous solve requests
// round-robin over the tenants. Afterwards it scrapes /metrics, stops
// the server, replays the journal (warm + cold passes, bitwise-checked
// against each other inside ReplayJournal), and finally compares every
// daemon response bit-for-bit with the replayed scores — the wire, the
// journal, and a direct SolverSession::ComputeAll must all agree.
// One BENCH_JSON line with throughput and client-observed latency.
//
// Usage: bench_daemon [--smoke] [clients] [requests_per_client] [tenants]
//   defaults: 8 clients x 150 requests over 8 tenants.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/query/parser.h"
#include "shapcq/serve/client.h"
#include "shapcq/serve/journal.h"
#include "shapcq/serve/protocol.h"
#include "shapcq/serve/replay.h"
#include "shapcq/serve/server.h"
#include "shapcq/util/clock.h"
#include "shapcq/workload/generators.h"

using namespace shapcq;  // NOLINT: benchmark brevity

namespace {

constexpr const char* kQuery =
    "Q(x) <- R(x, a), S(x, b), T(x, c), U(x, d), V(x, e)";

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

struct ClientStats {
  std::vector<uint64_t> latency_micros;
  uint64_t errors = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::ParseArgs(argc, argv);
  int clients = args.Int(0, args.smoke ? 3 : 8);
  int requests_per_client = args.Int(1, args.smoke ? 10 : 150);
  int tenants = args.Int(2, args.smoke ? 3 : 8);

  const std::string journal_path = "bench_daemon.journal";

  ServerOptions server_options;
  server_options.journal_path = journal_path;
  server_options.worker_threads = 4;
  AttributionServer server(server_options);

  ConjunctiveQuery q = MustParseQuery(kQuery);
  std::map<std::string, std::shared_ptr<const Database>> tenant_dbs;
  for (int t = 0; t < tenants; ++t) {
    RandomDatabaseOptions db_options;
    db_options.facts_per_relation = 3;
    db_options.endogenous_percent = 80;
    db_options.seed = 1 + static_cast<uint64_t>(t) * 7919;
    Database db = RandomDatabaseForQuery(q, db_options);
    std::string name = "tenant" + std::to_string(t);
    tenant_dbs[name] = std::make_shared<const Database>(db);
    server.RegisterTenant(name, std::move(db));
  }
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("daemon on 127.0.0.1:%d (metrics :%d), %d tenants\n",
              server.port(), server.metrics_port(), tenants);
  bench::Rule();

  // Drive the daemon; keep every parsed response for the parity check.
  std::mutex responses_mu;
  std::unordered_map<uint64_t, SolveResponse> responses;
  std::vector<ClientStats> stats(static_cast<size_t>(clients));
  double wall_ms = bench::TimeMs([&] {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        ClientStats& my = stats[static_cast<size_t>(c)];
        StatusOr<LineClient> client = LineClient::Connect(server.port());
        if (!client.ok()) {
          my.errors = static_cast<uint64_t>(requests_per_client);
          return;
        }
        for (int r = 0; r < requests_per_client; ++r) {
          SolveRequest request;
          request.id = static_cast<uint64_t>(c) * 1000000u +
                       static_cast<uint64_t>(r) + 1;
          request.tenant =
              "tenant" + std::to_string((c + r * clients) % tenants);
          request.query = kQuery;
          uint64_t start = MonotonicNanos();
          StatusOr<std::string> reply =
              client->RoundTrip(SerializeSolveRequest(request));
          uint64_t micros = (MonotonicNanos() - start) / 1000;
          StatusOr<SolveResponse> response =
              reply.ok() ? ParseResponseLine(*reply)
                         : StatusOr<SolveResponse>(reply.status());
          if (!response.ok() || response->status != "ok") {
            ++my.errors;
            continue;
          }
          my.latency_micros.push_back(micros);
          std::lock_guard<std::mutex> lock(responses_mu);
          responses[request.id] = std::move(response).value();
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  });

  uint64_t total_requests =
      static_cast<uint64_t>(clients) *
      static_cast<uint64_t>(requests_per_client);
  uint64_t errors = 0;
  std::vector<uint64_t> latencies;
  for (const ClientStats& s : stats) {
    errors += s.errors;
    latencies.insert(latencies.end(), s.latency_micros.begin(),
                     s.latency_micros.end());
  }
  std::sort(latencies.begin(), latencies.end());
  auto quantile = [&](double f) -> uint64_t {
    if (latencies.empty()) return 0;
    size_t i = static_cast<size_t>(f * static_cast<double>(latencies.size()));
    return latencies[std::min(i, latencies.size() - 1)];
  };
  double req_per_sec =
      wall_ms > 0 ? 1000.0 * static_cast<double>(total_requests - errors) /
                        wall_ms
                  : 0.0;
  std::printf("%llu requests, %llu errors: %.1f ms wall (%.1f req/s), "
              "p50 %llu us, p99 %llu us\n",
              static_cast<unsigned long long>(total_requests),
              static_cast<unsigned long long>(errors), wall_ms, req_per_sec,
              static_cast<unsigned long long>(quantile(0.50)),
              static_cast<unsigned long long>(quantile(0.99)));

  // Scrape /metrics while the daemon is live.
  StatusOr<std::string> metrics = HttpGet(server.metrics_port(), "/metrics");
  bool metrics_ok =
      metrics.ok() &&
      metrics->find("shapcq_requests_total{status=\"ok\"}") !=
          std::string::npos &&
      metrics->find("shapcq_request_latency_p99_seconds") !=
          std::string::npos;
  std::printf("metrics scrape: %s\n", metrics_ok ? "ok" : "FAILED");

  server.Stop();

  // Replay the journal and compare wire responses bitwise.
  StatusOr<std::vector<JournalRecord>> records = ReadJournal(journal_path);
  if (!records.ok()) {
    std::fprintf(stderr, "journal read failed: %s\n",
                 records.status().ToString().c_str());
    return 1;
  }
  double replay_ms = 0;
  bool parity = true;
  StatusOr<ReplayResult> replay =
      ReplayJournal(*records, tenant_dbs, ReplayOptions{});
  if (!replay.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 replay.status().ToString().c_str());
    parity = false;
  } else {
    replay_ms = replay->warm_ms + replay->cold_ms;
    for (size_t i = 0; i < records->size() && parity; ++i) {
      auto it = responses.find((*records)[i].request.id);
      if (it == responses.end()) continue;  // errored client-side
      const std::vector<FactScore>& wire = it->second.results;
      const auto& replayed = replay->results[i];
      parity = wire.size() == replayed.size();
      for (size_t f = 0; f < replayed.size() && parity; ++f) {
        const auto& [fact, result] = replayed[f];
        parity = wire[f].fact == fact && wire[f].exact == result.is_exact &&
                 SameBits(wire[f].value, result.approximation) &&
                 (!result.is_exact ||
                  wire[f].exact_value == result.exact.ToString());
      }
    }
    std::printf("replayed %llu records in %.1f ms: wire parity %s\n",
                static_cast<unsigned long long>(replay->records), replay_ms,
                parity ? "bitwise identical" : "MISMATCH — BUG");
  }
  std::remove(journal_path.c_str());

  bench::JsonLine("daemon")
      .Int("clients", clients)
      .Int("requests_per_client", requests_per_client)
      .Int("tenants", tenants)
      .Int("requests", static_cast<long long>(total_requests))
      .Int("errors", static_cast<long long>(errors))
      .Num("wall_ms", wall_ms)
      .Num("req_per_sec", req_per_sec)
      .Int("p50_us", static_cast<long long>(quantile(0.50)))
      .Int("p99_us", static_cast<long long>(quantile(0.99)))
      .Int("journal_records",
           static_cast<long long>(records.ok() ? records->size() : 0))
      .Num("replay_ms", replay_ms)
      .Bool("metrics_ok", metrics_ok)
      .Bool("wire_parity", parity)
      .Int("peak_rss_bytes", static_cast<long long>(bench::PeakRssBytes()))
      .Emit();

  return (errors == 0 && metrics_ok && parity) ? 0 : 1;
}
