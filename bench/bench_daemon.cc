// Daemon throughput benchmark: concurrent clients against a live
// shapcqd server, with journaled traffic replayed for bitwise parity —
// run twice, tracing off then on, to price the observability layer.
//
// Each phase starts an in-process AttributionServer (ephemeral loopback
// ports, journaling on, trace level off or on), registers a set of
// generated tenant databases, then drives N client threads each issuing
// synchronous solve requests round-robin over the tenants. Afterwards
// it scrapes /metrics, stops the server, replays the journal (warm +
// cold passes, bitwise-checked against each other inside ReplayJournal),
// and compares every daemon response bit-for-bit with the replayed
// scores — the wire, the journal, and a direct
// SolverSession::ComputeAll must all agree, traced or not. One
// BENCH_JSON line reports both phases and the tracing overhead.
//
// Usage: bench_daemon [--smoke] [--trace-gate PCT]
//                     [clients] [requests_per_client] [tenants]
//   defaults: 8 clients x 150 requests over 8 tenants.
//   --trace-gate PCT: run each phase best-of-3 and exit nonzero when the
//   tracing-on phase is more than PCT percent slower than tracing-off —
//   the CI regression gate for the observability layer.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/obs/trace.h"
#include "shapcq/query/parser.h"
#include "shapcq/serve/client.h"
#include "shapcq/serve/journal.h"
#include "shapcq/serve/protocol.h"
#include "shapcq/serve/replay.h"
#include "shapcq/serve/server.h"
#include "shapcq/util/clock.h"
#include "shapcq/workload/generators.h"

using namespace shapcq;  // NOLINT: benchmark brevity

namespace {

constexpr const char* kQuery =
    "Q(x) <- R(x, a), S(x, b), T(x, c), U(x, d), V(x, e)";

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

struct ClientStats {
  std::vector<uint64_t> latency_micros;
  uint64_t errors = 0;
};

struct PhaseResult {
  double wall_ms = 0;
  double req_per_sec = 0;
  uint64_t errors = 0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
  uint64_t journal_records = 0;
  double replay_ms = 0;
  bool metrics_ok = false;
  bool parity = false;

  bool healthy() const { return errors == 0 && metrics_ok && parity; }
};

PhaseResult RunPhase(TraceLevel level, int clients, int requests_per_client,
                     int tenants) {
  PhaseResult out;
  const std::string journal_path =
      std::string("bench_daemon.") + TraceLevelName(level) + ".journal";

  ServerOptions server_options;
  server_options.journal_path = journal_path;
  server_options.worker_threads = 4;
  server_options.trace_level = level;
  AttributionServer server(server_options);

  ConjunctiveQuery q = MustParseQuery(kQuery);
  std::map<std::string, std::shared_ptr<const Database>> tenant_dbs;
  for (int t = 0; t < tenants; ++t) {
    RandomDatabaseOptions db_options;
    db_options.facts_per_relation = 3;
    db_options.endogenous_percent = 80;
    db_options.seed = 1 + static_cast<uint64_t>(t) * 7919;
    Database db = RandomDatabaseForQuery(q, db_options);
    std::string name = "tenant" + std::to_string(t);
    tenant_dbs[name] = std::make_shared<const Database>(db);
    server.RegisterTenant(name, std::move(db));
  }
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return out;
  }

  // Drive the daemon; keep every parsed response for the parity check.
  std::mutex responses_mu;
  std::unordered_map<uint64_t, SolveResponse> responses;
  std::vector<ClientStats> stats(static_cast<size_t>(clients));
  out.wall_ms = bench::TimeMs([&] {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        ClientStats& my = stats[static_cast<size_t>(c)];
        StatusOr<LineClient> client = LineClient::Connect(server.port());
        if (!client.ok()) {
          my.errors = static_cast<uint64_t>(requests_per_client);
          return;
        }
        for (int r = 0; r < requests_per_client; ++r) {
          SolveRequest request;
          request.id = static_cast<uint64_t>(c) * 1000000u +
                       static_cast<uint64_t>(r) + 1;
          request.tenant =
              "tenant" + std::to_string((c + r * clients) % tenants);
          request.query = kQuery;
          uint64_t start = MonotonicNanos();
          StatusOr<std::string> reply =
              client->RoundTrip(SerializeSolveRequest(request));
          uint64_t micros = (MonotonicNanos() - start) / 1000;
          StatusOr<SolveResponse> response =
              reply.ok() ? ParseResponseLine(*reply)
                         : StatusOr<SolveResponse>(reply.status());
          if (!response.ok() || response->status != "ok") {
            ++my.errors;
            continue;
          }
          my.latency_micros.push_back(micros);
          std::lock_guard<std::mutex> lock(responses_mu);
          responses[request.id] = std::move(response).value();
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  });

  uint64_t total_requests = static_cast<uint64_t>(clients) *
                            static_cast<uint64_t>(requests_per_client);
  std::vector<uint64_t> latencies;
  for (const ClientStats& s : stats) {
    out.errors += s.errors;
    latencies.insert(latencies.end(), s.latency_micros.begin(),
                     s.latency_micros.end());
  }
  std::sort(latencies.begin(), latencies.end());
  auto quantile = [&](double f) -> uint64_t {
    if (latencies.empty()) return 0;
    size_t i = static_cast<size_t>(f * static_cast<double>(latencies.size()));
    return latencies[std::min(i, latencies.size() - 1)];
  };
  out.p50_us = quantile(0.50);
  out.p99_us = quantile(0.99);
  out.req_per_sec =
      out.wall_ms > 0
          ? 1000.0 * static_cast<double>(total_requests - out.errors) /
                out.wall_ms
          : 0.0;
  std::printf("trace=%-4s %llu requests, %llu errors: %.1f ms wall "
              "(%.1f req/s), p50 %llu us, p99 %llu us\n",
              TraceLevelName(level),
              static_cast<unsigned long long>(total_requests),
              static_cast<unsigned long long>(out.errors), out.wall_ms,
              out.req_per_sec, static_cast<unsigned long long>(out.p50_us),
              static_cast<unsigned long long>(out.p99_us));

  // Scrape /metrics while the daemon is live.
  StatusOr<std::string> metrics = HttpGet(server.metrics_port(), "/metrics");
  out.metrics_ok =
      metrics.ok() &&
      metrics->find("shapcq_requests_total{status=\"ok\"}") !=
          std::string::npos &&
      metrics->find("shapcq_request_latency_p99_seconds") !=
          std::string::npos;
  // The tracing-on phase must also feed the per-stage histograms.
  if (level != TraceLevel::kOff) {
    out.metrics_ok = out.metrics_ok &&
                     metrics.ok() &&
                     metrics->find("shapcq_stage_seconds_bucket") !=
                         std::string::npos;
  }
  std::printf("metrics scrape: %s\n", out.metrics_ok ? "ok" : "FAILED");

  server.Stop();

  // Replay the journal and compare wire responses bitwise.
  StatusOr<std::vector<JournalRecord>> records = ReadJournal(journal_path);
  if (!records.ok()) {
    std::fprintf(stderr, "journal read failed: %s\n",
                 records.status().ToString().c_str());
    return out;
  }
  out.journal_records = records->size();
  out.parity = true;
  StatusOr<ReplayResult> replay =
      ReplayJournal(*records, tenant_dbs, ReplayOptions{});
  if (!replay.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 replay.status().ToString().c_str());
    out.parity = false;
  } else {
    out.replay_ms = replay->warm_ms + replay->cold_ms;
    for (size_t i = 0; i < records->size() && out.parity; ++i) {
      auto it = responses.find((*records)[i].request.id);
      if (it == responses.end()) continue;  // errored client-side
      const std::vector<FactScore>& wire = it->second.results;
      const auto& replayed = replay->results[i];
      out.parity = wire.size() == replayed.size();
      for (size_t f = 0; f < replayed.size() && out.parity; ++f) {
        const auto& [fact, result] = replayed[f];
        out.parity =
            wire[f].fact == fact && wire[f].exact == result.is_exact &&
            SameBits(wire[f].value, result.approximation) &&
            (!result.is_exact ||
             wire[f].exact_value == result.exact.ToString());
      }
    }
    std::printf("replayed %llu records in %.1f ms: wire parity %s\n",
                static_cast<unsigned long long>(replay->records),
                out.replay_ms,
                out.parity ? "bitwise identical" : "MISMATCH — BUG");
  }
  std::remove(journal_path.c_str());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // --trace-gate is ours, not bench_util's: strip it before ParseArgs
  // (which treats unknown flags as positionals).
  int trace_gate_pct = -1;
  std::vector<char*> filtered;
  filtered.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-gate") == 0 && i + 1 < argc) {
      trace_gate_pct = std::atoi(argv[++i]);
    } else {
      filtered.push_back(argv[i]);
    }
  }
  bench::Args args =
      bench::ParseArgs(static_cast<int>(filtered.size()), filtered.data());
  int clients = args.Int(0, args.smoke ? 3 : 8);
  int requests_per_client = args.Int(1, args.smoke ? 10 : 150);
  int tenants = args.Int(2, args.smoke ? 3 : 8);

  std::printf("%d clients x %d requests over %d tenants\n", clients,
              requests_per_client, tenants);
  bench::Rule();

  // Gated runs take the best of 3 per phase: the gate compares the two
  // phases' best throughput, not one noisy sample of each.
  const int repeats = trace_gate_pct >= 0 ? 3 : 1;
  auto best_of = [&](TraceLevel level) {
    PhaseResult best;
    for (int r = 0; r < repeats; ++r) {
      PhaseResult run =
          RunPhase(level, clients, requests_per_client, tenants);
      if (!run.healthy()) return run;  // fail fast, keep the evidence
      if (run.req_per_sec > best.req_per_sec) best = run;
    }
    return best;
  };
  PhaseResult off = best_of(TraceLevel::kOff);
  PhaseResult on = best_of(TraceLevel::kOn);

  double overhead_pct =
      off.req_per_sec > 0
          ? 100.0 * (off.req_per_sec - on.req_per_sec) / off.req_per_sec
          : 0.0;
  bool gate_ok =
      trace_gate_pct < 0 || overhead_pct <= static_cast<double>(trace_gate_pct);
  std::printf("tracing overhead: %.1f%% (off %.1f req/s, on %.1f req/s)%s\n",
              overhead_pct, off.req_per_sec, on.req_per_sec,
              trace_gate_pct < 0
                  ? ""
                  : (gate_ok ? " — within gate" : " — GATE EXCEEDED"));

  bench::JsonLine("daemon")
      .Int("clients", clients)
      .Int("requests_per_client", requests_per_client)
      .Int("tenants", tenants)
      .Int("errors", static_cast<long long>(off.errors + on.errors))
      .Num("wall_ms", off.wall_ms)
      .Num("req_per_sec", off.req_per_sec)
      .Num("req_per_sec_off", off.req_per_sec)
      .Num("req_per_sec_on", on.req_per_sec)
      .Num("trace_overhead_pct", overhead_pct)
      .Int("trace_gate_pct", trace_gate_pct)
      .Bool("trace_gate_ok", gate_ok)
      .Int("p50_us", static_cast<long long>(off.p50_us))
      .Int("p99_us", static_cast<long long>(off.p99_us))
      .Int("p50_us_on", static_cast<long long>(on.p50_us))
      .Int("p99_us_on", static_cast<long long>(on.p99_us))
      .Int("journal_records",
           static_cast<long long>(off.journal_records + on.journal_records))
      .Num("replay_ms", off.replay_ms + on.replay_ms)
      .Bool("metrics_ok", off.metrics_ok && on.metrics_ok)
      .Bool("wire_parity", off.parity && on.parity)
      .Int("peak_rss_bytes", static_cast<long long>(bench::PeakRssBytes()))
      .Emit();

  return (off.healthy() && on.healthy() && gate_ok) ? 0 : 1;
}
