// Experiment E5: closed formulas (Props 4.2/4.4/5.2) vs the generic DPs on
// single-relation queries — same values, different cost. google-benchmark.

#include <benchmark/benchmark.h>

#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/avg_quantile.h"
#include "shapcq/shapley/closed_forms.h"
#include "shapcq/shapley/count_distinct.h"
#include "shapcq/shapley/min_max.h"
#include "shapcq/shapley/score.h"
#include "shapcq/util/check.h"

namespace shapcq {
namespace {

Database SingleRelation(int n) {
  Database db;
  for (int i = 0; i < n; ++i) {
    db.AddEndogenous("R", {Value(i), Value((i * 31) % 23 - 7)});
  }
  return db;
}

AggregateQuery Make(AggregateFunction alpha) {
  return AggregateQuery{MustParseQuery("Q(i, v) <- R(i, v)"), MakeTauId(1),
                        std::move(alpha)};
}

void BM_ClosedFormMax(benchmark::State& state) {
  Database db = SingleRelation(static_cast<int>(state.range(0)));
  AggregateQuery a = Make(AggregateFunction::Max());
  for (auto _ : state) {
    auto r = ClosedFormMax(a, db, 0);
    SHAPCQ_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ClosedFormMax)->Arg(64)->Arg(256)->Arg(1024);

void BM_GenericDpMax(benchmark::State& state) {
  Database db = SingleRelation(static_cast<int>(state.range(0)));
  AggregateQuery a = Make(AggregateFunction::Max());
  for (auto _ : state) {
    auto r = ScoreViaSumK(a, db, 0, MinMaxSumK);
    SHAPCQ_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GenericDpMax)->Arg(64)->Arg(128);

void BM_ClosedFormAvg(benchmark::State& state) {
  Database db = SingleRelation(static_cast<int>(state.range(0)));
  AggregateQuery a = Make(AggregateFunction::Avg());
  for (auto _ : state) {
    auto r = ClosedFormAvg(a, db, 0);
    SHAPCQ_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ClosedFormAvg)->Arg(64)->Arg(256)->Arg(1024);

void BM_GenericDpAvg(benchmark::State& state) {
  Database db = SingleRelation(static_cast<int>(state.range(0)));
  AggregateQuery a = Make(AggregateFunction::Avg());
  for (auto _ : state) {
    auto r = ScoreViaSumK(a, db, 0, AvgQuantileSumK);
    SHAPCQ_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GenericDpAvg)->Arg(16)->Arg(32);

void BM_ClosedFormCDist(benchmark::State& state) {
  Database db = SingleRelation(static_cast<int>(state.range(0)));
  AggregateQuery a = Make(AggregateFunction::CountDistinct());
  for (auto _ : state) {
    auto r = ClosedFormCountDistinct(a, db, 0);
    SHAPCQ_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ClosedFormCDist)->Arg(64)->Arg(1024);

void BM_GenericDpCDist(benchmark::State& state) {
  Database db = SingleRelation(static_cast<int>(state.range(0)));
  AggregateQuery a = Make(AggregateFunction::CountDistinct());
  for (auto _ : state) {
    auto r = ScoreViaSumK(a, db, 0, CountDistinctSumK);
    SHAPCQ_CHECK(r.ok());
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GenericDpCDist)->Arg(64)->Arg(256);

// Correctness gate: abort the whole benchmark binary if the closed forms
// and the DPs ever disagree.
void VerifyAgreement() {
  Database db = SingleRelation(24);
  AggregateQuery max_q = Make(AggregateFunction::Max());
  AggregateQuery avg_q = Make(AggregateFunction::Avg());
  AggregateQuery cd_q = Make(AggregateFunction::CountDistinct());
  for (FactId f : {FactId{0}, FactId{7}, FactId{23}}) {
    SHAPCQ_CHECK(*ClosedFormMax(max_q, db, f) ==
                 *ScoreViaSumK(max_q, db, f, MinMaxSumK));
    SHAPCQ_CHECK(*ClosedFormAvg(avg_q, db, f) ==
                 *ScoreViaSumK(avg_q, db, f, AvgQuantileSumK));
    SHAPCQ_CHECK(*ClosedFormCountDistinct(cd_q, db, f) ==
                 *ScoreViaSumK(cd_q, db, f, CountDistinctSumK));
  }
}

}  // namespace
}  // namespace shapcq

int main(int argc, char** argv) {
  shapcq::VerifyAgreement();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
