// Experiment E5: closed formulas (Props 4.2/4.4/5.2) vs the generic DPs on
// single-relation queries — same values, different cost.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/avg_quantile.h"
#include "shapcq/shapley/closed_forms.h"
#include "shapcq/shapley/count_distinct.h"
#include "shapcq/shapley/min_max.h"
#include "shapcq/shapley/score.h"
#include "shapcq/util/check.h"

using namespace shapcq;  // NOLINT

namespace {

Database SingleRelation(int n) {
  Database db;
  for (int i = 0; i < n; ++i) {
    db.AddEndogenous("R", {Value(i), Value((i * 31) % 23 - 7)});
  }
  return db;
}

AggregateQuery Make(AggregateFunction alpha) {
  return AggregateQuery{MustParseQuery("Q(i, v) <- R(i, v)"), MakeTauId(1),
                        std::move(alpha)};
}

// Correctness gate: abort the whole benchmark binary if the closed forms
// and the DPs ever disagree.
void VerifyAgreement() {
  Database db = SingleRelation(24);
  AggregateQuery max_q = Make(AggregateFunction::Max());
  AggregateQuery avg_q = Make(AggregateFunction::Avg());
  AggregateQuery cd_q = Make(AggregateFunction::CountDistinct());
  for (FactId f : {FactId{0}, FactId{7}, FactId{23}}) {
    SHAPCQ_CHECK(*ClosedFormMax(max_q, db, f) ==
                 *ScoreViaSumK(max_q, db, f, MinMaxSumK));
    SHAPCQ_CHECK(*ClosedFormAvg(avg_q, db, f) ==
                 *ScoreViaSumK(avg_q, db, f, AvgQuantileSumK));
    SHAPCQ_CHECK(*ClosedFormCountDistinct(cd_q, db, f) ==
                 *ScoreViaSumK(cd_q, db, f, CountDistinctSumK));
  }
}

void Run(const std::string& name, const std::vector<int>& sizes,
         const std::function<AggregateQuery()>& make,
         const std::function<StatusOr<Rational>(const AggregateQuery&,
                                                const Database&)>& score) {
  AggregateQuery a = make();
  for (int n : sizes) {
    Database db = SingleRelation(n);
    double ms = bench::TimeMs([&] {
      auto r = score(a, db);
      SHAPCQ_CHECK(r.ok());
    });
    std::printf("%-24s %6d %12.3f ms\n", name.c_str(), n, ms);
    bench::JsonLine("closed_forms")
        .Str("case", name)
        .Int("n", n)
        .Num("ms", ms)
        .Emit();
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::ParseArgs(argc, argv);
  VerifyAgreement();
  std::printf("E5: closed forms vs generic DPs (single-relation queries)\n");
  bench::Rule('=');
  const bool smoke = args.smoke;
  auto sizes = [&](std::vector<int> full, std::vector<int> tiny) {
    return smoke ? tiny : full;
  };
  Run("closed_form_max", sizes({64, 256, 1024}, {32}),
      [] { return Make(AggregateFunction::Max()); },
      [](const AggregateQuery& a, const Database& db) {
        return ClosedFormMax(a, db, 0);
      });
  Run("generic_dp_max", sizes({64, 128}, {24}),
      [] { return Make(AggregateFunction::Max()); },
      [](const AggregateQuery& a, const Database& db) {
        return ScoreViaSumK(a, db, 0, MinMaxSumK);
      });
  Run("closed_form_avg", sizes({64, 256, 1024}, {32}),
      [] { return Make(AggregateFunction::Avg()); },
      [](const AggregateQuery& a, const Database& db) {
        return ClosedFormAvg(a, db, 0);
      });
  Run("generic_dp_avg", sizes({16, 32}, {12}),
      [] { return Make(AggregateFunction::Avg()); },
      [](const AggregateQuery& a, const Database& db) {
        return ScoreViaSumK(a, db, 0, AvgQuantileSumK);
      });
  Run("closed_form_cdist", sizes({64, 1024}, {32}),
      [] { return Make(AggregateFunction::CountDistinct()); },
      [](const AggregateQuery& a, const Database& db) {
        return ClosedFormCountDistinct(a, db, 0);
      });
  Run("generic_dp_cdist", sizes({64, 256}, {24}),
      [] { return Make(AggregateFunction::CountDistinct()); },
      [](const AggregateQuery& a, const Database& db) {
        return ScoreViaSumK(a, db, 0, CountDistinctSumK);
      });
  bench::Rule('=');
  std::printf("E5 result: closed forms agree with the DPs and are orders of "
              "magnitude cheaper on single-relation queries.\n");
  return 0;
}
