// Experiment E4: faithfulness and cost of the paper's hardness
// constructions (Figure 3, Lemma D.4, Lemma E.2).
//
// For each reduction we (a) verify on small instances that the Shapley
// value of the distinguished fact equals the combinatorial quantity the
// proof extracts from it (cover counts / set-cover game value / disjoint
// collection counts), and (b) time exact brute force as the instance grows,
// exhibiting the exponential cost the reductions predict for any exact
// method outside the frontier.

#include <cstdio>
#include <set>
#include <vector>

#include "bench_util.h"
#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/util/combinatorics.h"
#include "shapcq/workload/generators.h"

using namespace shapcq;  // NOLINT

namespace {

Rational AvgFormula(const SetCoverInstance& instance, int q, int r) {
  // Σ_j Σ_i j!(m+r−j)!/(m+r+1)! · Z_{i,j}/(i+q+2), Z by enumeration.
  const int m = static_cast<int>(instance.sets.size());
  Combinatorics comb;
  Rational expected;
  for (int mask = 0; mask < (1 << m); ++mask) {
    std::set<int> covered;
    int j = 0;
    for (int s = 0; s < m; ++s) {
      if (mask & (1 << s)) {
        ++j;
        covered.insert(instance.sets[static_cast<size_t>(s)].begin(),
                       instance.sets[static_cast<size_t>(s)].end());
      }
    }
    expected += Rational(comb.Factorial(j) * comb.Factorial(m + r - j),
                         comb.Factorial(m + r + 1)) /
                Rational(static_cast<int64_t>(covered.size()) + q + 2);
  }
  return expected;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::ParseArgs(argc, argv);
  std::printf("E4: hardness-reduction constructions as adversarial "
              "workloads\n");
  bench::Rule('=');
  int faithfulness_mismatches = 0;

  // (a) Faithfulness: Figure 3 / Avg.
  {
    SetCoverInstance instance;
    instance.universe_size = 3;
    instance.sets = {{1, 2}, {2, 3}, {1, 3}};
    FactId s_zero = -1;
    Database db = SetCoverAvgDatabase(instance, /*q=*/1, /*r=*/1, &s_zero);
    AggregateQuery a{MustParseQuery("Q(x) <- R(x, y), S(y)"), MakeTauReLU(0),
                     AggregateFunction::Avg()};
    Rational shapley = *BruteForceScore(a, db, s_zero);
    Rational expected = AvgFormula(instance, 1, 1);
    std::printf("Figure 3 (Avg ∘ tau_ReLU ∘ Q_xyy):   Shapley(S(0)) = %s, "
                "cover-count formula = %s  -> %s\n",
                shapley.ToString().c_str(), expected.ToString().c_str(),
                shapley == expected ? "ok" : "MISMATCH");
    if (shapley != expected) ++faithfulness_mismatches;
  }

  // (a') Faithfulness: Lemma D.4 / quantile game.
  {
    SetCoverInstance instance;
    instance.universe_size = 3;
    instance.sets = {{1, 2}, {3}, {2, 3}};
    Database db = SetCoverQuantileDatabase(instance, 1, 2);
    AggregateQuery a{MustParseQuery("Q(x) <- R(x, y), S(y)"),
                     MakeTauGreaterThan(0, Rational(0)),
                     AggregateFunction::Median()};
    // The game value of the full coalition must be 1 (the sets cover X).
    Rational full_value = a.Evaluate(db);
    std::printf("Lemma D.4 (Qnt ∘ tau_>0 ∘ Q_xyy):    A(D) = %s (covering "
                "coalition) -> %s\n",
                full_value.ToString().c_str(),
                full_value == Rational(1) ? "ok" : "MISMATCH");
    if (full_value != Rational(1)) ++faithfulness_mismatches;
  }

  // (a'') Faithfulness: Lemma E.2 / exact cover.
  {
    SetCoverInstance instance;
    instance.universe_size = 4;
    instance.sets = {{1, 2}, {3, 4}, {2, 3}};
    FactId s_zero = -1;
    Database db = ExactCoverDupDatabase(instance, /*r=*/1, &s_zero);
    AggregateQuery a{MustParseQuery("Q(x, y) <- R(x, y), S(y)"),
                     MakeTauReLU(0), AggregateFunction::HasDuplicates()};
    Rational shapley = *BruteForceScore(a, db, s_zero);
    // Z_j: disjoint collections — {}, {1}, {2}, {3}, {1,2}: Z_0=1, Z_1=3,
    // Z_2=1.
    Combinatorics comb;
    int m = 3, r = 1;
    Rational expected =
        Rational(comb.Factorial(0) * comb.Factorial(m + r - 0),
                 comb.Factorial(m + r + 1)) *
            Rational(1) +
        Rational(comb.Factorial(1) * comb.Factorial(m + r - 1),
                 comb.Factorial(m + r + 1)) *
            Rational(3) +
        Rational(comb.Factorial(2) * comb.Factorial(m + r - 2),
                 comb.Factorial(m + r + 1)) *
            Rational(1);
    std::printf("Lemma E.2 (Dup ∘ tau_ReLU ∘ Q^full): Shapley(S(0)) = %s, "
                "disjoint-collection formula = %s -> %s\n",
                shapley.ToString().c_str(), expected.ToString().c_str(),
                shapley == expected ? "ok" : "MISMATCH");
    if (shapley != expected) ++faithfulness_mismatches;
  }
  bench::JsonLine("setcover_faithfulness")
      .Int("mismatches", faithfulness_mismatches)
      .Emit();

  // (b) Exponential growth of exact computation on the reductions.
  std::printf("\nexact brute force on growing Figure 3 instances "
              "(players = m + r + 1):\n");
  std::printf("%6s %8s %12s\n", "m", "players", "time_ms");
  bench::Rule();
  const std::vector<int> set_counts =
      args.smoke ? std::vector<int>{6, 8} : std::vector<int>{6, 8, 10, 12, 14, 16};
  for (int m : set_counts) {
    SetCoverInstance instance = RandomSetCover(4, m, 3, 99);
    FactId s_zero = -1;
    Database db = SetCoverAvgDatabase(instance, 1, 2, &s_zero);
    AggregateQuery a{MustParseQuery("Q(x) <- R(x, y), S(y)"), MakeTauReLU(0),
                     AggregateFunction::Avg()};
    double ms = bench::TimeMs([&] {
      auto r = BruteForceScore(a, db, s_zero);
      if (!r.ok()) std::abort();
    });
    std::printf("%6d %8d %12.2f\n", m, db.num_endogenous(), ms);
    bench::JsonLine("setcover_brute_force")
        .Int("m", m)
        .Int("players", db.num_endogenous())
        .Num("ms", ms)
        .Emit();
  }
  bench::Rule('=');
  std::printf("E4 result: reductions numerically faithful; exact cost "
              "doubles per added set, as the #P-hardness arguments "
              "predict.\n");
  return 0;
}
