// Serving-loop benchmark: one query answered against many tenant
// databases, cold vs. warm plan cache.
//
// The compile-once/execute-many split (shapley/plan.h) moves everything
// database-independent — canonicalization aside, classification, frontier
// verdict, engine selection, localization analysis — out of the request
// loop. The cold loop recompiles the AttributionPlan for every tenant
// (the pre-plan behavior of one SolverSession per (query, db) pair); the
// warm loop fetches the one cached plan per request, so each tenant pays
// only execution. Results are checked bitwise-identical between the two
// loops for every tenant. One BENCH_JSON line per workload.
//
// Usage: bench_serving [--smoke] [tenants] [facts_per_relation] [seed]
//   defaults: 400 tenants of 3 facts/relation (tiny per-tenant databases —
//   the serving regime where compilation is a visible fraction of the
//   request); --smoke shrinks to CI sizes.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/lineage/circuit_cache.h"
#include "shapcq/persist/artifact.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/plan.h"
#include "shapcq/shapley/session.h"
#include "shapcq/workload/generators.h"

using namespace shapcq;  // NOLINT: benchmark brevity

namespace {

using Results = std::vector<std::pair<FactId, SolveResult>>;

Results MustComputeAll(std::shared_ptr<const AttributionPlan> plan,
                       const Database& db, const SolverOptions& options) {
  SolverSession session(std::move(plan), db);
  auto results = session.ComputeAll(options);
  if (!results.ok()) {
    std::fprintf(stderr, "ComputeAll failed: %s\n",
                 results.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(results).value();
}

bool Identical(const Results& a, const Results& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].first != b[i].first || !a[i].second.is_exact ||
        !b[i].second.is_exact || a[i].second.exact != b[i].second.exact) {
      return false;
    }
  }
  return true;
}

bool RunWorkload(const char* label, const AggregateQuery& a, int tenants,
                 int facts_per_relation, uint64_t seed) {
  std::printf("%s: %s\n", label, a.ToString().c_str());

  std::vector<Database> databases;
  databases.reserve(static_cast<size_t>(tenants));
  int total_endogenous = 0;
  for (int t = 0; t < tenants; ++t) {
    RandomDatabaseOptions options;
    options.facts_per_relation = facts_per_relation;
    options.endogenous_percent = 80;
    options.seed = seed + static_cast<uint64_t>(t) * 7919;
    databases.push_back(RandomDatabaseForQuery(a.query, options));
    total_endogenous += databases.back().num_endogenous();
  }
  std::printf("tenants=%d facts/relation=%d total endogenous=%d\n", tenants,
              facts_per_relation, total_endogenous);
  bench::Rule();

  // Pinned to one worker so cold-vs-warm is the compilation overhead
  // alone, not thread-pool noise on tiny inputs.
  SolverOptions options;
  options.num_threads = 1;

  // Cold: every request compiles its own plan (one full database-
  // independent analysis per tenant — the pre-plan serving cost).
  std::vector<Results> cold(static_cast<size_t>(tenants));
  double cold_ms = bench::TimeMs([&] {
    for (int t = 0; t < tenants; ++t) {
      cold[static_cast<size_t>(t)] = MustComputeAll(
          AttributionPlan::Compile(a), databases[static_cast<size_t>(t)],
          options);
    }
  });
  std::printf("cold (compile/req)  : %10.1f ms  (%.1f req/s)\n", cold_ms,
              1000.0 * tenants / cold_ms);

  // Warm: every request fetches the one cached plan.
  PlanCache cache;
  cache.GetOrCompile(a);  // prime, outside the timed loop
  std::vector<Results> warm(static_cast<size_t>(tenants));
  bench::AllocDelta warm_alloc;
  double warm_ms = bench::TimeMs([&] {
    warm_alloc = bench::MeasureAlloc([&] {
      for (int t = 0; t < tenants; ++t) {
        warm[static_cast<size_t>(t)] = MustComputeAll(
            cache.GetOrCompile(a), databases[static_cast<size_t>(t)],
            options);
      }
    });
  });
  std::printf("warm (cached plan)  : %10.1f ms  (%.1f req/s)\n", warm_ms,
              1000.0 * tenants / warm_ms);

  bool identical = true;
  for (int t = 0; t < tenants; ++t) {
    identical = identical && Identical(cold[static_cast<size_t>(t)],
                                       warm[static_cast<size_t>(t)]);
  }
  PlanCache::Stats stats = cache.stats();
  double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0.0;
  bench::Rule();
  std::printf("speedup: %.2fx   cache: %llu hits / %llu misses   "
              "identical results: %s\n\n",
              speedup, static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              identical ? "yes" : "NO — BUG");
  bench::JsonLine("serving")
      .Str("query", a.query.ToString())
      .Str("agg", a.alpha.ToString())
      .Int("tenants", tenants)
      .Int("facts_per_relation", facts_per_relation)
      .Int("total_endogenous", total_endogenous)
      .Num("cold_ms", cold_ms)
      .Num("warm_ms", warm_ms)
      .Num("cold_req_per_sec", 1000.0 * tenants / cold_ms)
      .Num("warm_req_per_sec", 1000.0 * tenants / warm_ms)
      .Num("speedup", speedup)
      .Int("cache_hits", static_cast<long long>(stats.hits))
      .Int("cache_misses", static_cast<long long>(stats.misses))
      .Bool("identical", identical)
      .Int("warm_alloc_bytes", static_cast<long long>(warm_alloc.bytes))
      .Int("warm_alloc_calls", static_cast<long long>(warm_alloc.calls))
      .Int("peak_rss_bytes", static_cast<long long>(bench::PeakRssBytes()))
      .Emit();
  return identical;
}

// Tenant t = base with every integer constant shifted into its own range:
// the same lineage shapes under disjoint constants, the regime the
// cross-tenant circuit cache and the artifact store serve.
Database ShiftedCopy(const Database& base, int64_t shift) {
  Database copy;
  for (FactId id = 0; id < base.num_facts(); ++id) {
    const Fact& fact = base.fact(id);
    Tuple args;
    args.reserve(fact.args.size());
    for (const Value& v : fact.args) {
      args.push_back(v.kind() == Value::Kind::kInt ? Value(v.AsInt() + shift)
                                                   : v);
    }
    copy.AddFact(fact.relation, std::move(args), fact.endogenous);
  }
  return copy;
}

// Warm-start restart: cold boot (empty caches — every circuit compiles)
// vs. warm boot (artifact load, then serve) on a non-hierarchical
// workload, both timed to the first answer. The non-hierarchical triangle
// keeps the tractable DPs out, so requests ride the lineage-circuit
// engine whose compiled state persist/artifact.h snapshots.
bool RunWarmStartRestart(int tenants, int facts_per_relation,
                         uint64_t seed) {
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y, z), T(z, x)");
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Count()};
  std::printf("warm-start restart: %s\n", a.ToString().c_str());

  RandomDatabaseOptions db_options;
  db_options.facts_per_relation = facts_per_relation;
  db_options.endogenous_percent = 90;
  db_options.seed = seed;
  Database base = RandomDatabaseForQuery(q, db_options);
  std::vector<Database> fleet;
  fleet.reserve(static_cast<size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    fleet.push_back(ShiftedCopy(base, static_cast<int64_t>(t) * 1000000));
  }
  std::printf("tenants=%d facts/relation=%d endogenous/tenant=%d\n", tenants,
              facts_per_relation, base.num_endogenous());
  bench::Rule();

  SolverOptions options;
  options.num_threads = 1;

  // Populate pass: fills the global plan + circuit caches (the serving
  // path's own sharing), then snapshots them to the artifact directory.
  PlanCache::Global().Clear();
  CircuitCache::Global().Clear();
  std::vector<Results> expected(static_cast<size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    expected[static_cast<size_t>(t)] =
        MustComputeAll(PlanCache::Global().GetOrCompile(a),
                       fleet[static_cast<size_t>(t)], options);
  }
  const std::string artifact_dir =
      "/tmp/shapcq_bench_serving_artifacts_" + std::to_string(seed);
  ArtifactWriter writer(artifact_dir);
  auto plans_written = writer.WritePlans(PlanCache::Global().Snapshot());
  auto circuits_written =
      writer.WriteCircuits(CircuitCache::Global().Snapshot());
  if (!plans_written.ok() || !circuits_written.ok()) {
    std::fprintf(stderr, "artifact write failed\n");
    return false;
  }

  // Cold restart: empty caches, the first answer pays plan compilation,
  // lineage extraction, circuit compilation, and model counting.
  PlanCache::Global().Clear();
  CircuitCache::Global().Clear();
  Results cold_first;
  double cold_first_ms = bench::TimeMs([&] {
    cold_first = MustComputeAll(PlanCache::Global().GetOrCompile(a),
                                fleet[0], options);
  });

  // Warm restart: load the artifacts, then serve — the first answer pays
  // decode + validation + extraction, but no compilation or counting.
  PlanCache::Global().Clear();
  CircuitCache::Global().Clear();
  Results warm_first;
  double warm_first_ms = bench::TimeMs([&] {
    ArtifactReader reader(artifact_dir);
    auto plans = reader.ReadPlans(&PlanCache::Global());
    auto circuits = reader.ReadCircuits(&CircuitCache::Global());
    if (!plans.ok() || !circuits.ok() || circuits->circuits == 0) {
      std::fprintf(stderr, "artifact load failed\n");
      std::exit(1);
    }
    warm_first = MustComputeAll(PlanCache::Global().GetOrCompile(a),
                                fleet[0], options);
  });

  bool identical = Identical(cold_first, expected[0]) &&
                   Identical(warm_first, expected[0]);
  double speedup = warm_first_ms > 0 ? cold_first_ms / warm_first_ms : 0.0;
  std::printf("restart to first answer: cold %8.2f ms   warm %8.2f ms "
              "(%.2fx)\n",
              cold_first_ms, warm_first_ms, speedup);
  std::printf("identical results: %s\n\n", identical ? "yes" : "NO — BUG");
  bench::JsonLine("serving_warm_start")
      .Str("query", q.ToString())
      .Int("tenants", tenants)
      .Int("facts_per_relation", facts_per_relation)
      .Int("endogenous_per_tenant", base.num_endogenous())
      .Int("circuits_persisted",
           static_cast<long long>(circuits_written->circuits))
      .Int("artifact_bytes",
           static_cast<long long>(plans_written->bytes +
                                  circuits_written->bytes))
      .Num("cold_first_answer_ms", cold_first_ms)
      .Num("warm_first_answer_ms", warm_first_ms)
      .Num("first_answer_speedup", speedup)
      .Bool("identical", identical)
      .Emit();
  std::remove((artifact_dir + "/" + kPlanArtifactFile).c_str());
  std::remove((artifact_dir + "/" + kCircuitArtifactFile).c_str());
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::ParseArgs(argc, argv);
  int tenants = args.Int(0, args.smoke ? 40 : 400);
  int facts_per_relation = args.Int(1, 3);
  uint64_t seed = static_cast<uint64_t>(args.Int64(2, 1));

  bool ok = true;

  {
    // A wide ∃-hierarchical star: enough variables and atoms that the
    // per-request classification + engine selection the plan amortizes is
    // a visible slice of these tiny-tenant requests.
    ConjunctiveQuery q = MustParseQuery(
        "Q(x) <- R(x, a), S(x, b), T(x, c), U(x, d), V(x, e)");
    AggregateQuery a{q, MakeTauId(0), AggregateFunction::Sum()};
    ok = RunWorkload("serving loop (Sum, star)", a, tenants,
                     facts_per_relation, seed) &&
         ok;
  }

  {
    // The same star under Max (all-hierarchical, τ localized on every
    // atom): the Min/Max DP engine's plan. Smaller tenants — the DP is
    // heavier per fact, and serving tiny requests is where compilation
    // shows.
    ConjunctiveQuery q = MustParseQuery(
        "Q(x) <- R(x, a), S(x, b), T(x, c), U(x, d), V(x, e)");
    AggregateQuery a{q, MakeTauId(0), AggregateFunction::Max()};
    ok = RunWorkload("serving loop (Max, star)", a, tenants,
                     facts_per_relation > 2 ? 2 : facts_per_relation,
                     seed + 1) &&
         ok;
  }

  // Restart-to-first-answer, cold vs. warm-started from the artifact
  // store (smaller fleet: the phase measures boot latency, not sweep
  // throughput).
  ok = RunWarmStartRestart(args.smoke ? 4 : 16,
                           args.smoke ? 8 : 20, seed + 2) &&
       ok;

  return ok ? 0 : 1;
}
