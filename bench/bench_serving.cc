// Serving-loop benchmark: one query answered against many tenant
// databases, cold vs. warm plan cache.
//
// The compile-once/execute-many split (shapley/plan.h) moves everything
// database-independent — canonicalization aside, classification, frontier
// verdict, engine selection, localization analysis — out of the request
// loop. The cold loop recompiles the AttributionPlan for every tenant
// (the pre-plan behavior of one SolverSession per (query, db) pair); the
// warm loop fetches the one cached plan per request, so each tenant pays
// only execution. Results are checked bitwise-identical between the two
// loops for every tenant. One BENCH_JSON line per workload.
//
// Usage: bench_serving [--smoke] [tenants] [facts_per_relation] [seed]
//   defaults: 400 tenants of 3 facts/relation (tiny per-tenant databases —
//   the serving regime where compilation is a visible fraction of the
//   request); --smoke shrinks to CI sizes.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/plan.h"
#include "shapcq/shapley/session.h"
#include "shapcq/workload/generators.h"

using namespace shapcq;  // NOLINT: benchmark brevity

namespace {

using Results = std::vector<std::pair<FactId, SolveResult>>;

Results MustComputeAll(std::shared_ptr<const AttributionPlan> plan,
                       const Database& db, const SolverOptions& options) {
  SolverSession session(std::move(plan), db);
  auto results = session.ComputeAll(options);
  if (!results.ok()) {
    std::fprintf(stderr, "ComputeAll failed: %s\n",
                 results.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(results).value();
}

bool Identical(const Results& a, const Results& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].first != b[i].first || !a[i].second.is_exact ||
        !b[i].second.is_exact || a[i].second.exact != b[i].second.exact) {
      return false;
    }
  }
  return true;
}

bool RunWorkload(const char* label, const AggregateQuery& a, int tenants,
                 int facts_per_relation, uint64_t seed) {
  std::printf("%s: %s\n", label, a.ToString().c_str());

  std::vector<Database> databases;
  databases.reserve(static_cast<size_t>(tenants));
  int total_endogenous = 0;
  for (int t = 0; t < tenants; ++t) {
    RandomDatabaseOptions options;
    options.facts_per_relation = facts_per_relation;
    options.endogenous_percent = 80;
    options.seed = seed + static_cast<uint64_t>(t) * 7919;
    databases.push_back(RandomDatabaseForQuery(a.query, options));
    total_endogenous += databases.back().num_endogenous();
  }
  std::printf("tenants=%d facts/relation=%d total endogenous=%d\n", tenants,
              facts_per_relation, total_endogenous);
  bench::Rule();

  // Pinned to one worker so cold-vs-warm is the compilation overhead
  // alone, not thread-pool noise on tiny inputs.
  SolverOptions options;
  options.num_threads = 1;

  // Cold: every request compiles its own plan (one full database-
  // independent analysis per tenant — the pre-plan serving cost).
  std::vector<Results> cold(static_cast<size_t>(tenants));
  double cold_ms = bench::TimeMs([&] {
    for (int t = 0; t < tenants; ++t) {
      cold[static_cast<size_t>(t)] = MustComputeAll(
          AttributionPlan::Compile(a), databases[static_cast<size_t>(t)],
          options);
    }
  });
  std::printf("cold (compile/req)  : %10.1f ms  (%.1f req/s)\n", cold_ms,
              1000.0 * tenants / cold_ms);

  // Warm: every request fetches the one cached plan.
  PlanCache cache;
  cache.GetOrCompile(a);  // prime, outside the timed loop
  std::vector<Results> warm(static_cast<size_t>(tenants));
  bench::AllocDelta warm_alloc;
  double warm_ms = bench::TimeMs([&] {
    warm_alloc = bench::MeasureAlloc([&] {
      for (int t = 0; t < tenants; ++t) {
        warm[static_cast<size_t>(t)] = MustComputeAll(
            cache.GetOrCompile(a), databases[static_cast<size_t>(t)],
            options);
      }
    });
  });
  std::printf("warm (cached plan)  : %10.1f ms  (%.1f req/s)\n", warm_ms,
              1000.0 * tenants / warm_ms);

  bool identical = true;
  for (int t = 0; t < tenants; ++t) {
    identical = identical && Identical(cold[static_cast<size_t>(t)],
                                       warm[static_cast<size_t>(t)]);
  }
  PlanCache::Stats stats = cache.stats();
  double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0.0;
  bench::Rule();
  std::printf("speedup: %.2fx   cache: %llu hits / %llu misses   "
              "identical results: %s\n\n",
              speedup, static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              identical ? "yes" : "NO — BUG");
  bench::JsonLine("serving")
      .Str("query", a.query.ToString())
      .Str("agg", a.alpha.ToString())
      .Int("tenants", tenants)
      .Int("facts_per_relation", facts_per_relation)
      .Int("total_endogenous", total_endogenous)
      .Num("cold_ms", cold_ms)
      .Num("warm_ms", warm_ms)
      .Num("cold_req_per_sec", 1000.0 * tenants / cold_ms)
      .Num("warm_req_per_sec", 1000.0 * tenants / warm_ms)
      .Num("speedup", speedup)
      .Int("cache_hits", static_cast<long long>(stats.hits))
      .Int("cache_misses", static_cast<long long>(stats.misses))
      .Bool("identical", identical)
      .Int("warm_alloc_bytes", static_cast<long long>(warm_alloc.bytes))
      .Int("warm_alloc_calls", static_cast<long long>(warm_alloc.calls))
      .Int("peak_rss_bytes", static_cast<long long>(bench::PeakRssBytes()))
      .Emit();
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::ParseArgs(argc, argv);
  int tenants = args.Int(0, args.smoke ? 40 : 400);
  int facts_per_relation = args.Int(1, 3);
  uint64_t seed = static_cast<uint64_t>(args.Int64(2, 1));

  bool ok = true;

  {
    // A wide ∃-hierarchical star: enough variables and atoms that the
    // per-request classification + engine selection the plan amortizes is
    // a visible slice of these tiny-tenant requests.
    ConjunctiveQuery q = MustParseQuery(
        "Q(x) <- R(x, a), S(x, b), T(x, c), U(x, d), V(x, e)");
    AggregateQuery a{q, MakeTauId(0), AggregateFunction::Sum()};
    ok = RunWorkload("serving loop (Sum, star)", a, tenants,
                     facts_per_relation, seed) &&
         ok;
  }

  {
    // The same star under Max (all-hierarchical, τ localized on every
    // atom): the Min/Max DP engine's plan. Smaller tenants — the DP is
    // heavier per fact, and serving tiny requests is where compilation
    // shows.
    ConjunctiveQuery q = MustParseQuery(
        "Q(x) <- R(x, a), S(x, b), T(x, c), U(x, d), V(x, e)");
    AggregateQuery a{q, MakeTauId(0), AggregateFunction::Max()};
    ok = RunWorkload("serving loop (Max, star)", a, tenants,
                     facts_per_relation > 2 ? 2 : facts_per_relation,
                     seed + 1) &&
         ok;
  }

  return ok ? 0 : 1;
}
