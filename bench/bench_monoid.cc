// Experiment E11: the Section 7.3 monotone-monoid extension in practice.
//
// Max(x + z) over the Cartesian product Q(x, z) <- R(x), T(z): τ is not
// localized on any atom, so the localized engines cannot run; the paper's
// Section 7.3 argument (implemented in min_max_monoid) makes it polynomial
// anyway. The table contrasts the monoid engine with brute force, shows
// the engine scaling far beyond the enumeration horizon, and measures the
// all-facts batched scorer (MinMaxMonoidScoreAll) against the per-fact
// sweep it replaces.

#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/shapley/min_max_monoid.h"
#include "shapcq/shapley/score.h"
#include "shapcq/shapley/solver_options.h"

using namespace shapcq;  // NOLINT

namespace {

Database MakeDb(int n) {
  Database db;
  for (int i = 0; i < n; ++i) {
    db.AddEndogenous("R", {Value(i), Value(i % 5 - 2)});
    db.AddEndogenous("T", {Value(i), Value((i * 3) % 7 - 3)});
  }
  return db;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::ParseArgs(argc, argv);
  std::printf("E11: Max(x + z) over the Cartesian product Q(x, z) <- R(i, x), "
              "T(j, z) — non-localized tau (Section 7.3)\n");
  bench::Rule('=');
  ConjunctiveQuery q = MustParseQuery("Q(x, z) <- R(i, x), T(j, z)");
  AggregateQuery reference{q, MakeMonoidTau(MonoidKind::kPlus, {0, 1}),
                           AggregateFunction::Max()};
  SumKEngine engine = [&q](const AggregateQuery&, const Database& d,
                           const SolverOptions&) {
    return MonoidMinMaxSumK(q, MonoidKind::kPlus, {0, 1}, /*is_max=*/true, d);
  };
  std::printf("%6s %10s %18s %18s %10s\n", "n/side", "players",
              "monoid DP (ms)", "brute force (ms)", "agree");
  bench::Rule();
  const std::vector<int> verify_sizes =
      args.smoke ? std::vector<int>{4, 6} : std::vector<int>{4, 6, 8, 10};
  for (int n : verify_sizes) {
    Database db = MakeDb(n);
    FactId probe = db.EndogenousFacts().front();
    Rational dp_value, bf_value;
    double dp_ms = bench::TimeMs(
        [&] { dp_value = *ScoreViaSumK(reference, db, probe, engine); });
    double bf_ms = bench::TimeMs(
        [&] { bf_value = *BruteForceScore(reference, db, probe); });
    std::printf("%6d %10d %18.2f %18.2f %10s\n", n, db.num_endogenous(),
                dp_ms, bf_ms, dp_value == bf_value ? "yes" : "MISMATCH");
    bench::JsonLine("monoid_vs_brute")
        .Int("n", n)
        .Int("players", db.num_endogenous())
        .Num("monoid_dp_ms", dp_ms)
        .Num("brute_force_ms", bf_ms)
        .Bool("agree", dp_value == bf_value)
        .Emit();
    if (dp_value != bf_value) return 1;
  }
  std::printf("beyond the brute-force horizon (monoid DP only):\n");
  const std::vector<int> dp_sizes =
      args.smoke ? std::vector<int>{20} : std::vector<int>{40, 80, 160};
  for (int n : dp_sizes) {
    Database db = MakeDb(n);
    FactId probe = db.EndogenousFacts().front();
    double dp_ms = bench::TimeMs([&] {
      auto r = ScoreViaSumK(reference, db, probe, engine);
      if (!r.ok()) std::abort();
    });
    std::printf("%6d %10d %18.2f %18s\n", n, db.num_endogenous(), dp_ms,
                "(2^n infeasible)");
    bench::JsonLine("monoid_dp_only")
        .Int("n", n)
        .Int("players", db.num_endogenous())
        .Num("monoid_dp_ms", dp_ms)
        .Emit();
  }
  std::printf("all-facts attribution: batched MinMaxMonoidScoreAll vs the "
              "per-fact sweep\n");
  bench::Rule();
  std::printf("%6s %10s %18s %18s %9s %10s\n", "n/side", "players",
              "per-fact (ms)", "batched (ms)", "speedup", "identical");
  const std::vector<int> all_sizes =
      args.smoke ? std::vector<int>{6} : std::vector<int>{10, 20, 30};
  for (int n : all_sizes) {
    Database db = MakeDb(n);
    const std::vector<FactId> facts = db.EndogenousFacts();
    // Per-fact: the pre-batching path — every fact re-copies and re-solves.
    std::vector<std::pair<FactId, Rational>> per_fact;
    per_fact.reserve(facts.size());
    double per_fact_ms = bench::TimeMs([&] {
      for (FactId fact : facts) {
        auto score = ScoreViaSumK(reference, db, fact, engine);
        if (!score.ok()) std::abort();
        per_fact.emplace_back(fact, std::move(score).value());
      }
    });
    // Batched: this cross-product workload takes the pushed-functional
    // fast path (one leave-one-out DP pass, then per-fact BigInt dot
    // products) — the speedup is purely algorithmic, no threads involved.
    std::vector<std::pair<FactId, Rational>> batched;
    double batched_ms = bench::TimeMs([&] {
      auto scores = MinMaxMonoidScoreAll(q, MonoidKind::kPlus, {0, 1},
                                         /*is_max=*/true, db);
      if (!scores.ok()) std::abort();
      batched = std::move(scores).value();
    });
    bool identical = batched.size() == per_fact.size();
    for (size_t i = 0; identical && i < batched.size(); ++i) {
      identical = batched[i].first == per_fact[i].first &&
                  batched[i].second == per_fact[i].second;
    }
    double speedup = batched_ms > 0 ? per_fact_ms / batched_ms : 0.0;
    std::printf("%6d %10d %18.2f %18.2f %8.2fx %10s\n", n,
                db.num_endogenous(), per_fact_ms, batched_ms, speedup,
                identical ? "yes" : "MISMATCH");
    bench::JsonLine("monoid_score_all")
        .Int("n", n)
        .Int("players", db.num_endogenous())
        .Num("per_fact_ms", per_fact_ms)
        .Num("batched_ms", batched_ms)
        .Num("speedup", speedup)
        .Bool("identical", identical)
        .Emit();
    if (!identical) return 1;
  }
  bench::Rule('=');
  std::printf("E11 result: the monotone-monoid structure restores "
              "polynomial exact computation for a value function no "
              "localized engine can handle, and the batched scorer serves "
              "all facts in a fraction of the per-fact sweep.\n");
  return 0;
}
