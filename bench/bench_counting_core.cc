// Experiment E10: the counting core, microbenched layer by layer.
//
// (a) Circuit model counting: the production CountModelsBySize (arena
//     spans + fixed-width CountValue integers) against an in-bench
//     baseline that replays the pre-arena design — one heap vector per
//     node and pure-BigInt weight polynomials. Both run on the *same*
//     compiled circuit and the results are asserted bitwise identical, so
//     the table isolates the memory-layout/arithmetic win with zero
//     algorithmic difference. Target: >= 2x.
//
// (b) Posting-list intersection: the dispatching IntersectPostings (SIMD
//     block kernel + galloping for skewed pairs, when SHAPCQ_SIMD is on)
//     against the always-compiled scalar galloping oracle, again with
//     results asserted identical.
//
// Alloc telemetry (bench_util.h's counting operator new) shows how many
// heap bytes each side touches — the arena/fixed-width point is that the
// fast path allocates orders of magnitude less.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "bench_util.h"
#include "shapcq/data/column_store.h"
#include "shapcq/lineage/circuit.h"
#include "shapcq/util/bigint.h"
#include "shapcq/util/combinatorics.h"

using namespace shapcq;  // NOLINT

namespace {

// --- the pre-arena baseline, replayed ------------------------------------
//
// Same algorithm as CountModelsBySize, but with the old data layout: each
// node owns std::vector<int> vars/children, and every polynomial entry is
// a heap BigInt. Built from the production circuit so both sides count the
// same DAG.

struct BaselineNode {
  LineageCircuit::NodeKind kind;
  int var = -1;
  int hi = -1;
  int lo = -1;
  std::vector<int> vars;
  std::vector<int> children;
};

std::vector<BaselineNode> ToPointerNodes(const LineageCircuit& circuit) {
  std::vector<BaselineNode> nodes;
  nodes.reserve(circuit.nodes.size());
  for (const LineageCircuit::Node& node : circuit.nodes) {
    BaselineNode b;
    b.kind = node.kind;
    b.var = node.var;
    b.hi = node.hi;
    b.lo = node.lo;
    b.vars.assign(circuit.vars(node).begin(), circuit.vars(node).end());
    b.children.assign(circuit.children(node).begin(),
                      circuit.children(node).end());
    nodes.push_back(std::move(b));
  }
  return nodes;
}

using BPoly = std::vector<BigInt>;

BPoly BConv(const BPoly& a, const BPoly& b, size_t max_len) {
  if (a.empty() || b.empty()) return {};
  size_t len = std::min(a.size() + b.size() - 1, max_len);
  BPoly c(len);
  for (size_t i = 0; i < a.size() && i < len; ++i) {
    if (a[i].is_zero()) continue;
    for (size_t j = 0; j < b.size() && i + j < len; ++j) {
      if (b[j].is_zero()) continue;
      c[i + j] += a[i] * b[j];
    }
  }
  return c;
}

BPoly BShift1(const BPoly& p, size_t max_len) {
  if (p.empty()) return {};
  BPoly shifted(std::min(p.size() + 1, max_len));
  for (size_t i = 0; i + 1 < max_len && i < p.size(); ++i) {
    shifted[i + 1] = p[i];
  }
  return shifted;
}

void BAddInto(BPoly* acc, const BPoly& add) {
  if (add.empty()) return;
  if (acc->size() < add.size()) acc->resize(add.size());
  for (size_t i = 0; i < add.size(); ++i) {
    if (!add[i].is_zero()) (*acc)[i] += add[i];
  }
}

std::vector<int> BGapVars(const std::vector<int>& parent,
                          const std::vector<int>& child, int skip_var) {
  std::vector<int> gap;
  std::set_difference(parent.begin(), parent.end(), child.begin(),
                      child.end(), std::back_inserter(gap));
  auto pos = std::lower_bound(gap.begin(), gap.end(), skip_var);
  if (pos != gap.end() && *pos == skip_var) gap.erase(pos);
  return gap;
}

CircuitModelCounts BaselineCountModelsBySize(
    const std::vector<BaselineNode>& nodes, int num_vars, int root_index,
    Combinatorics* comb) {
  const size_t max_len = static_cast<size_t>(num_vars) + 1;

  std::vector<BPoly> counts(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    const BaselineNode& node = nodes[i];
    switch (node.kind) {
      case LineageCircuit::NodeKind::kFalse:
        break;
      case LineageCircuit::NodeKind::kTrue:
        counts[i] = {BigInt(1)};
        break;
      case LineageCircuit::NodeKind::kDecision: {
        const size_t len = node.vars.size() + 1;
        const BaselineNode& hi = nodes[static_cast<size_t>(node.hi)];
        const BaselineNode& lo = nodes[static_cast<size_t>(node.lo)];
        int64_t gap_hi = static_cast<int64_t>(node.vars.size()) - 1 -
                         static_cast<int64_t>(hi.vars.size());
        int64_t gap_lo = static_cast<int64_t>(node.vars.size()) - 1 -
                         static_cast<int64_t>(lo.vars.size());
        BPoly result =
            BConv(BShift1(counts[static_cast<size_t>(node.hi)], len),
                  comb->BinomialRow(gap_hi), len);
        BAddInto(&result, BConv(counts[static_cast<size_t>(node.lo)],
                                comb->BinomialRow(gap_lo), len));
        counts[i] = std::move(result);
        break;
      }
      case LineageCircuit::NodeKind::kAnd: {
        BPoly result = {BigInt(1)};
        for (int child : node.children) {
          result = BConv(result, counts[static_cast<size_t>(child)], max_len);
        }
        counts[i] = std::move(result);
        break;
      }
    }
  }

  CircuitModelCounts result;
  result.by_size.assign(max_len, BigInt());
  result.containing.resize(static_cast<size_t>(num_vars));
  auto add_containing = [&result, max_len](int v, const BPoly& add) {
    BPoly& acc = result.containing[static_cast<size_t>(v)];
    if (acc.empty()) acc.assign(max_len, BigInt());
    for (size_t i = 0; i < add.size(); ++i) {
      if (!add[i].is_zero()) acc[i] += add[i];
    }
  };

  const size_t root = static_cast<size_t>(root_index);
  std::vector<BPoly> ctx(nodes.size());
  {
    std::vector<int> all(static_cast<size_t>(num_vars));
    for (int v = 0; v < num_vars; ++v) all[static_cast<size_t>(v)] = v;
    std::vector<int> gap = BGapVars(all, nodes[root].vars, -1);
    const int64_t g = static_cast<int64_t>(gap.size());
    ctx[root] = comb->BinomialRow(g);
    BPoly total = BConv(counts[root], ctx[root], max_len);
    for (size_t k = 0; k < total.size(); ++k) result.by_size[k] = total[k];
    if (g > 0) {
      BPoly gap_models = BShift1(
          BConv(counts[root], comb->BinomialRow(g - 1), max_len), max_len);
      for (int u : gap) add_containing(u, gap_models);
    }
  }

  for (size_t i = root + 1; i-- > 2;) {
    if (i >= nodes.size() || ctx[i].empty()) continue;
    const BaselineNode& node = nodes[i];
    if (node.kind == LineageCircuit::NodeKind::kDecision) {
      const BaselineNode& hi = nodes[static_cast<size_t>(node.hi)];
      const BaselineNode& lo = nodes[static_cast<size_t>(node.lo)];
      std::vector<int> gap_hi = BGapVars(node.vars, hi.vars, node.var);
      std::vector<int> gap_lo = BGapVars(node.vars, lo.vars, node.var);
      const int64_t gh = static_cast<int64_t>(gap_hi.size());
      const int64_t gl = static_cast<int64_t>(gap_lo.size());
      BPoly through_hi = BShift1(
          BConv(ctx[i], counts[static_cast<size_t>(node.hi)], max_len),
          max_len);
      add_containing(node.var,
                     BConv(through_hi, comb->BinomialRow(gh), max_len));
      if (gh > 0) {
        BPoly gap_models = BConv(BShift1(through_hi, max_len),
                                 comb->BinomialRow(gh - 1), max_len);
        for (int u : gap_hi) add_containing(u, gap_models);
      }
      BAddInto(&ctx[static_cast<size_t>(node.hi)],
               BConv(BShift1(ctx[i], max_len), comb->BinomialRow(gh),
                     max_len));
      if (gl > 0) {
        BPoly through_lo =
            BConv(ctx[i], counts[static_cast<size_t>(node.lo)], max_len);
        BPoly gap_models = BConv(BShift1(through_lo, max_len),
                                 comb->BinomialRow(gl - 1), max_len);
        for (int u : gap_lo) add_containing(u, gap_models);
      }
      BAddInto(&ctx[static_cast<size_t>(node.lo)],
               BConv(ctx[i], comb->BinomialRow(gl), max_len));
    } else if (node.kind == LineageCircuit::NodeKind::kAnd) {
      const size_t r = node.children.size();
      std::vector<BPoly> prefix(r + 1);
      std::vector<BPoly> suffix(r + 1);
      prefix[0] = {BigInt(1)};
      suffix[r] = {BigInt(1)};
      for (size_t c = 0; c < r; ++c) {
        prefix[c + 1] = BConv(
            prefix[c], counts[static_cast<size_t>(node.children[c])], max_len);
      }
      for (size_t c = r; c-- > 0;) {
        suffix[c] = BConv(suffix[c + 1],
                          counts[static_cast<size_t>(node.children[c])],
                          max_len);
      }
      for (size_t c = 0; c < r; ++c) {
        BAddInto(&ctx[static_cast<size_t>(node.children[c])],
                 BConv(ctx[i], BConv(prefix[c], suffix[c + 1], max_len),
                       max_len));
      }
    }
  }

  for (auto& row : result.containing) {
    if (row.empty()) row.assign(max_len, BigInt());
  }
  return result;
}

bool SameCounts(const CircuitModelCounts& a, const CircuitModelCounts& b) {
  auto same_row = [](const std::vector<BigInt>& x,
                     const std::vector<BigInt>& y) {
    size_t len = std::max(x.size(), y.size());
    for (size_t i = 0; i < len; ++i) {
      const BigInt& xv = i < x.size() ? x[i] : BigInt();
      const BigInt& yv = i < y.size() ? y[i] : BigInt();
      if (!(xv == yv)) return false;
    }
    return true;
  };
  if (!same_row(a.by_size, b.by_size)) return false;
  if (a.containing.size() != b.containing.size()) return false;
  for (size_t v = 0; v < a.containing.size(); ++v) {
    if (!same_row(a.containing[v], b.containing[v])) return false;
  }
  return true;
}

// Block-chain lineage: clauses {r_i, s_{i,j}, t_j} over `groups` blocks —
// the structure the chain query Q(z) <- R(z,x), S(x,y), T(y) produces,
// which compiles into a decomposable circuit with real AND fan-in.
std::vector<std::vector<int>> BlockChainDnf(int groups, int block,
                                            int* num_vars) {
  std::vector<std::vector<int>> clauses;
  int next = 0;
  std::vector<int> r(static_cast<size_t>(groups * block));
  std::vector<int> t(static_cast<size_t>(groups * block));
  for (int& v : r) v = next++;
  for (int& v : t) v = next++;
  for (int g = 0; g < groups; ++g) {
    for (int i = 0; i < block; ++i) {
      for (int j = 0; j < block; ++j) {
        int s = next++;
        clauses.push_back({r[static_cast<size_t>(g * block + i)], s,
                           t[static_cast<size_t>(g * block + j)]});
      }
    }
  }
  *num_vars = next;
  return clauses;
}

std::vector<FactId> MakePostings(int len, int stride, uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<FactId> out;
  out.reserve(static_cast<size_t>(len));
  FactId v = 0;
  for (int i = 0; i < len; ++i) {
    v += 1 + static_cast<FactId>(rng() % static_cast<uint32_t>(stride));
    out.push_back(v);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::ParseArgs(argc, argv);
  std::printf("E10: counting-core microbench — arena + fixed-width ints vs "
              "pointer/BigInt baseline\n");
  bench::Rule('=');
  std::printf("%8s %8s %12s %14s %10s %14s %14s\n", "vars", "nodes",
              "arena (ms)", "baseline (ms)", "speedup", "arena allocs",
              "base allocs");
  bench::Rule();

  const std::vector<std::pair<int, int>> configs =
      args.smoke ? std::vector<std::pair<int, int>>{{2, 2}, {3, 2}}
                 : std::vector<std::pair<int, int>>{
                       {1, 4}, {1, 5}, {2, 3}, {1, 6}};
  double worst_speedup = 1e300;
  for (const auto& [groups, block] : configs) {
    int num_vars = 0;
    std::vector<std::vector<int>> clauses =
        BlockChainDnf(groups, block, &num_vars);
    StatusOr<LineageCircuit> circuit = CompileDnf(clauses, num_vars);
    if (!circuit.ok()) {
      std::printf("compile failed for groups=%d block=%d vars=%d: %s\n",
                  groups, block, num_vars,
                  circuit.status().ToString().c_str());
      std::abort();
    }
    std::vector<BaselineNode> pointer_nodes = ToPointerNodes(*circuit);

    // Warm both binomial caches outside the timed region so neither side
    // pays first-touch cache building.
    Combinatorics comb;
    comb.BinomialRow(num_vars);
    comb.CountRow(num_vars);

    const int reps = args.smoke ? 1 : 3;
    CircuitModelCounts arena_counts;
    bench::AllocDelta arena_alloc;
    double arena_ms = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      double ms = bench::TimeMs([&] {
        arena_alloc = bench::MeasureAlloc(
            [&] { arena_counts = CountModelsBySize(*circuit, &comb); });
      });
      arena_ms = std::min(arena_ms, ms);
    }
    CircuitModelCounts baseline_counts;
    bench::AllocDelta baseline_alloc;
    double baseline_ms = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      double ms = bench::TimeMs([&] {
        baseline_alloc = bench::MeasureAlloc([&] {
          baseline_counts = BaselineCountModelsBySize(
              pointer_nodes, circuit->num_vars, circuit->root, &comb);
        });
      });
      baseline_ms = std::min(baseline_ms, ms);
    }
    // The whole point is a pure layout/arithmetic change: the two passes
    // must agree bit for bit.
    if (!SameCounts(arena_counts, baseline_counts)) std::abort();

    double speedup = baseline_ms / arena_ms;
    worst_speedup = std::min(worst_speedup, speedup);
    std::printf("%8d %8lld %12.2f %14.2f %9.2fx %14llu %14llu\n", num_vars,
                static_cast<long long>(circuit->num_nodes()), arena_ms,
                baseline_ms, speedup, arena_alloc.calls,
                baseline_alloc.calls);
    bench::JsonLine("counting_core_circuit")
        .Int("vars", num_vars)
        .Int("nodes", circuit->num_nodes())
        .Num("arena_ms", arena_ms)
        .Num("baseline_ms", baseline_ms)
        .Num("speedup", speedup)
        .Int("arena_alloc_bytes", static_cast<long long>(arena_alloc.bytes))
        .Int("arena_alloc_calls", static_cast<long long>(arena_alloc.calls))
        .Int("baseline_alloc_bytes",
             static_cast<long long>(baseline_alloc.bytes))
        .Int("baseline_alloc_calls",
             static_cast<long long>(baseline_alloc.calls))
        .Bool("bitwise_identical", true)
        .Int("peak_rss_bytes", static_cast<long long>(bench::PeakRssBytes()))
        .Emit();
  }
  bench::Rule();
  std::printf("worst-case speedup across configs: %.2fx (target >= 2x)\n\n",
              worst_speedup);

  // --- posting intersection ----------------------------------------------
  std::printf("posting intersection: dispatched kernel vs scalar galloping "
              "oracle (simd available: %s)\n",
              SimdIntersectionAvailable() ? "yes" : "no");
  bench::Rule('=');
  std::printf("%22s %12s %12s %10s\n", "shape", "simd (ms)", "scalar (ms)",
              "speedup");
  bench::Rule();
  struct Shape {
    const char* name;
    int len_a, stride_a, len_b, stride_b;
  };
  const int scale = args.smoke ? 1 : 64;
  const std::vector<Shape> shapes = {
      {"dense/dense", 4000 * scale, 2, 4000 * scale, 2},
      {"dense/sparse 8:1", 500 * scale, 16, 4000 * scale, 2},
      {"skewed 100:1", 40 * scale, 200, 4000 * scale, 2},
  };
  const int irepetitions = args.smoke ? 2 : 20;
  for (const Shape& shape : shapes) {
    std::vector<FactId> a = MakePostings(shape.len_a, shape.stride_a, 101);
    std::vector<FactId> b = MakePostings(shape.len_b, shape.stride_b, 202);
    std::vector<const std::vector<FactId>*> lists = {&a, &b};
    std::vector<FactId> dispatched;
    std::vector<FactId> scalar;
    double simd_ms = bench::TimeMs([&] {
      for (int r = 0; r < irepetitions; ++r) {
        dispatched = IntersectPostings(lists);
      }
    });
    double scalar_ms = bench::TimeMs([&] {
      for (int r = 0; r < irepetitions; ++r) {
        scalar = IntersectPostingsScalar(lists);
      }
    });
    if (dispatched != scalar) std::abort();  // oracle disagreement
    std::printf("%22s %12.3f %12.3f %9.2fx\n", shape.name, simd_ms,
                scalar_ms, scalar_ms / simd_ms);
    bench::JsonLine("counting_core_intersection")
        .Str("shape", shape.name)
        .Bool("simd_available", SimdIntersectionAvailable())
        .Int("result_len", static_cast<long long>(scalar.size()))
        .Num("dispatched_ms", simd_ms)
        .Num("scalar_ms", scalar_ms)
        .Num("speedup", scalar_ms / simd_ms)
        .Emit();
  }
  bench::Rule('=');
  std::printf("E10 result: the arena + fixed-width counting pass should be "
              ">= 2x the pointer/BigInt baseline with a fraction of the "
              "heap traffic; the SIMD kernel wins on dense pairs and defers "
              "to galloping on skewed ones.\n");
  return 0;
}
