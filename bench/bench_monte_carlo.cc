// Experiment E6: Monte Carlo approximation quality vs sample count on a
// query OUTSIDE the tractable frontier (Avg ∘ τ_ReLU ∘ Q_xyy), where
// sampling is the only scalable option. The exact reference value comes
// from brute force on a 16-player instance.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/shapley/monte_carlo.h"

using namespace shapcq;  // NOLINT

int main(int argc, char** argv) {
  bench::Args args = bench::ParseArgs(argc, argv);
  std::printf("E6: Monte Carlo error vs samples (Avg ∘ tau_ReLU ∘ Q_xyy, "
              "outside the frontier)\n");
  bench::Rule('=');
  const int n = args.smoke ? 8 : 12;
  const int groups = args.smoke ? 3 : 4;
  Database db;
  for (int i = 0; i < n; ++i) {
    db.AddEndogenous("R", {Value(i % 7 - 2), Value(i % groups)});
  }
  for (int g = 0; g < groups; ++g) db.AddEndogenous("S", {Value(g)});
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  AggregateQuery a{q, MakeTauReLU(0), AggregateFunction::Avg()};
  FactId probe = db.EndogenousFacts().front();
  double exact = BruteForceScore(a, db, probe)->ToDouble();
  std::printf("players = %d, exact Shapley(f) = %.6f\n\n",
              db.num_endogenous(), exact);
  std::printf("%10s %12s %12s %12s %10s\n", "samples", "estimate",
              "abs_error", "std_error", "time_ms");
  bench::Rule();
  const std::vector<int64_t> sample_counts =
      args.smoke ? std::vector<int64_t>{100, 400}
                 : std::vector<int64_t>{100, 400, 1600, 6400, 25600, 102400};
  for (int64_t samples : sample_counts) {
    MonteCarloOptions options;
    options.num_samples = samples;
    options.seed = 12345;
    MonteCarloResult result;
    double ms = bench::TimeMs([&] {
      result = *MonteCarloShapley(a, db, probe, options);
    });
    std::printf("%10lld %12.6f %12.6f %12.6f %10.2f\n",
                static_cast<long long>(samples), result.estimate,
                std::abs(result.estimate - exact), result.std_error, ms);
    bench::JsonLine("monte_carlo")
        .Int("samples", static_cast<long long>(samples))
        .Int("players", db.num_endogenous())
        .Num("estimate", result.estimate)
        .Num("abs_error", std::abs(result.estimate - exact))
        .Num("std_error", result.std_error)
        .Num("ms", ms)
        .Emit();
  }
  bench::Rule();
  std::printf("Hoeffding sample bounds for range 1: eps=0.05,d=0.05 -> %lld;"
              " eps=0.01,d=0.01 -> %lld\n",
              static_cast<long long>(HoeffdingSampleCount(1.0, 0.05, 0.05)),
              static_cast<long long>(HoeffdingSampleCount(1.0, 0.01, 0.01)));
  bench::Rule('=');
  std::printf("E6 result: error decays ~1/sqrt(samples); the estimator is "
              "unbiased and its std_error tracks the true error.\n");
  return 0;
}
