// Experiment E9: localization flips hardness (Proposition 7.3).
//
// Same query Q_xyyz(x, z) <- R(x, y), S(y), T(z); same aggregate Avg; two
// value functions:
//   τ¹_ReLU (reads x, localized on R)  — FP^#P-hard: exact = brute force.
//   τ²_ReLU (reads z, localized on T)  — polynomial via the gated product.
// Also Dup on Q^full_xyy with τ²_id (tractable) vs τ¹_id (hard).

#include <cstdio>

#include "bench_util.h"
#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/shapley/has_duplicates.h"
#include "shapcq/shapley/score.h"
#include "shapcq/shapley/special_cases.h"

using namespace shapcq;  // NOLINT

namespace {

Database MakeQxyyzDb(int n) {
  Database db;
  int groups = n / 4 + 1;
  for (int i = 0; i < n; ++i) {
    db.AddEndogenous("R", {Value((i / groups) % 5 - 2), Value(i % groups)});
  }
  for (int g = 0; g < groups; ++g) db.AddEndogenous("S", {Value(g)});
  for (int t = 0; t < n / 2 + 1; ++t) db.AddEndogenous("T", {Value(t - 1)});
  return db;
}

Database MakeQfullDb(int n) {
  Database db;
  int groups = n / 4 + 1;
  for (int i = 0; i < n; ++i) {
    db.AddEndogenous("R", {Value((i / groups) % 5 - 2), Value(i % groups)});
  }
  for (int g = 0; g < groups; ++g) db.AddEndogenous("S", {Value(g)});
  return db;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::ParseArgs(argc, argv);
  const std::vector<int> small_sizes =
      args.smoke ? std::vector<int>{6} : std::vector<int>{6, 8, 10, 12};
  std::printf("E9: the atom of localization decides tractability "
              "(Proposition 7.3)\n");
  bench::Rule('=');

  ConjunctiveQuery q_xyyz = MustParseQuery("Q(x, z) <- R(x, y), S(y), T(z)");
  std::printf("Avg over Q_xyyz: tau on x (hard side, brute force) vs tau on "
              "z (gated product)\n");
  std::printf("%6s %10s %20s %20s\n", "n", "players", "tau1: brute (ms)",
              "tau2: exact DP (ms)");
  bench::Rule();
  for (int n : small_sizes) {
    Database db = MakeQxyyzDb(n);
    AggregateQuery hard{q_xyyz, MakeTauReLU(0), AggregateFunction::Avg()};
    AggregateQuery easy{q_xyyz, MakeTauReLU(1), AggregateFunction::Avg()};
    FactId probe = db.EndogenousFacts().front();
    double hard_ms = bench::TimeMs([&] {
      auto r = BruteForceScore(hard, db, probe);
      if (!r.ok()) std::abort();
    });
    double easy_ms = bench::TimeMs([&] {
      auto r = ScoreViaSumK(easy, db, probe, GatedProductSumK);
      if (!r.ok()) std::abort();
    });
    std::printf("%6d %10d %20.2f %20.2f\n", n, db.num_endogenous(), hard_ms,
                easy_ms);
    bench::JsonLine("localization_avg")
        .Int("n", n)
        .Int("players", db.num_endogenous())
        .Num("tau1_brute_ms", hard_ms)
        .Num("tau2_dp_ms", easy_ms)
        .Emit();
  }
  std::printf("beyond the brute-force horizon (tau2 only):\n");
  const std::vector<int> dp_sizes =
      args.smoke ? std::vector<int>{16} : std::vector<int>{32, 64, 96};
  for (int n : dp_sizes) {
    Database db = MakeQxyyzDb(n);
    AggregateQuery easy{q_xyyz, MakeTauReLU(1), AggregateFunction::Avg()};
    FactId probe = db.EndogenousFacts().front();
    double easy_ms = bench::TimeMs([&] {
      auto r = ScoreViaSumK(easy, db, probe, GatedProductSumK);
      if (!r.ok()) std::abort();
    });
    std::printf("%6d %10d %20s %20.2f\n", n, db.num_endogenous(),
                "(2^n infeasible)", easy_ms);
    bench::JsonLine("localization_avg_dp_only")
        .Int("n", n)
        .Int("players", db.num_endogenous())
        .Num("tau2_dp_ms", easy_ms)
        .Emit();
  }

  ConjunctiveQuery q_full = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
  std::printf("\nDup over Q^full_xyy: tau1 (hard side) vs tau2 (exact)\n");
  std::printf("%6s %10s %20s %20s\n", "n", "players", "tau1: brute (ms)",
              "tau2: exact DP (ms)");
  bench::Rule();
  for (int n : small_sizes) {
    Database db = MakeQfullDb(n);
    AggregateQuery hard{q_full, MakeTauId(0),
                        AggregateFunction::HasDuplicates()};
    AggregateQuery easy{q_full, MakeTauId(1),
                        AggregateFunction::HasDuplicates()};
    FactId probe = db.EndogenousFacts().front();
    double hard_ms = bench::TimeMs([&] {
      auto r = BruteForceScore(hard, db, probe);
      if (!r.ok()) std::abort();
    });
    double easy_ms = bench::TimeMs([&] {
      auto r = ScoreViaSumK(easy, db, probe, HasDuplicatesSumK);
      if (!r.ok()) std::abort();
    });
    std::printf("%6d %10d %20.2f %20.2f\n", n, db.num_endogenous(), hard_ms,
                easy_ms);
    bench::JsonLine("localization_dup")
        .Int("n", n)
        .Int("players", db.num_endogenous())
        .Num("tau1_brute_ms", hard_ms)
        .Num("tau2_dp_ms", easy_ms)
        .Emit();
  }
  bench::Rule('=');
  std::printf("E9 result: with τ on the last atom both AggCQs admit "
              "polynomial exact computation; with τ on the first atom only "
              "exponential exact methods exist (Prop 7.3).\n");
  return 0;
}
