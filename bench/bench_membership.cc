// Experiment E7: the Boolean membership baseline (Livshits et al.), i.e.
// the innermost subroutine of every engine: satisfaction-count scaling on
// hierarchical Boolean CQs. google-benchmark.

#include <benchmark/benchmark.h>

#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/membership.h"
#include "shapcq/util/check.h"

namespace shapcq {
namespace {

Database MakeDb(int n, int groups) {
  Database db;
  for (int i = 0; i < n; ++i) {
    db.AddEndogenous("R", {Value(i), Value(i % groups)});
  }
  for (int g = 0; g < groups; ++g) db.AddEndogenous("S", {Value(g)});
  return db;
}

void BM_SatisfactionCounts(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db = MakeDb(n, n / 4 + 1);
  ConjunctiveQuery q = MustParseQuery("Q() <- R(x, y), S(y)");
  for (auto _ : state) {
    auto counts = SatisfactionCounts(q, db);
    SHAPCQ_CHECK(counts.ok());
    benchmark::DoNotOptimize(counts);
  }
}
BENCHMARK(BM_SatisfactionCounts)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MembershipShapley(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db = MakeDb(n, n / 4 + 1);
  ConjunctiveQuery q = MustParseQuery("Q() <- R(x, y), S(y)");
  for (auto _ : state) {
    auto score = MembershipScore(q, db, /*fact=*/0);
    SHAPCQ_CHECK(score.ok());
    benchmark::DoNotOptimize(score);
  }
}
BENCHMARK(BM_MembershipShapley)->Arg(32)->Arg(64)->Arg(128);

void BM_MembershipDeepQuery(benchmark::State& state) {
  // Three-level hierarchy: R(x), S(x, y), T(x, y, z).
  int n = static_cast<int>(state.range(0));
  Database db;
  for (int i = 0; i < n; ++i) {
    db.AddEndogenous("T", {Value(i % 3), Value(i % 9), Value(i)});
  }
  for (int i = 0; i < 9; ++i) {
    db.AddEndogenous("S", {Value(i % 3), Value(i)});
  }
  for (int i = 0; i < 3; ++i) db.AddEndogenous("R", {Value(i)});
  ConjunctiveQuery q = MustParseQuery("Q() <- R(x), S(x, y), T(x, y, z)");
  for (auto _ : state) {
    auto counts = SatisfactionCounts(q, db);
    SHAPCQ_CHECK(counts.ok());
    benchmark::DoNotOptimize(counts);
  }
}
BENCHMARK(BM_MembershipDeepQuery)->Arg(64)->Arg(128)->Arg(256);

}  // namespace
}  // namespace shapcq

BENCHMARK_MAIN();
