// Experiment E7: the Boolean membership baseline (Livshits et al.), i.e.
// the innermost subroutine of every engine: satisfaction-count scaling on
// hierarchical Boolean CQs.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/membership.h"
#include "shapcq/util/check.h"

using namespace shapcq;  // NOLINT

namespace {

Database MakeDb(int n, int groups) {
  Database db;
  for (int i = 0; i < n; ++i) {
    db.AddEndogenous("R", {Value(i), Value(i % groups)});
  }
  for (int g = 0; g < groups; ++g) db.AddEndogenous("S", {Value(g)});
  return db;
}

Database MakeDeepDb(int n) {
  // Three-level hierarchy: R(x), S(x, y), T(x, y, z).
  Database db;
  for (int i = 0; i < n; ++i) {
    db.AddEndogenous("T", {Value(i % 3), Value(i % 9), Value(i)});
  }
  for (int i = 0; i < 9; ++i) {
    db.AddEndogenous("S", {Value(i % 3), Value(i)});
  }
  for (int i = 0; i < 3; ++i) db.AddEndogenous("R", {Value(i)});
  return db;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::ParseArgs(argc, argv);
  std::printf("E7: satisfaction-count scaling on hierarchical Boolean CQs\n");
  bench::Rule('=');

  ConjunctiveQuery q = MustParseQuery("Q() <- R(x, y), S(y)");
  std::printf("%-24s %6s %12s\n", "case", "n", "time_ms");
  bench::Rule();
  const std::vector<int> count_sizes =
      args.smoke ? std::vector<int>{32} : std::vector<int>{32, 64, 128, 256};
  for (int n : count_sizes) {
    Database db = MakeDb(n, n / 4 + 1);
    double ms = bench::TimeMs([&] {
      auto counts = SatisfactionCounts(q, db);
      SHAPCQ_CHECK(counts.ok());
    });
    std::printf("%-24s %6d %12.3f\n", "satisfaction_counts", n, ms);
    bench::JsonLine("membership_satisfaction_counts")
        .Int("n", n)
        .Num("ms", ms)
        .Emit();
  }
  const std::vector<int> shapley_sizes =
      args.smoke ? std::vector<int>{32} : std::vector<int>{32, 64, 128};
  for (int n : shapley_sizes) {
    Database db = MakeDb(n, n / 4 + 1);
    double ms = bench::TimeMs([&] {
      auto score = MembershipScore(q, db, /*fact=*/0);
      SHAPCQ_CHECK(score.ok());
    });
    std::printf("%-24s %6d %12.3f\n", "membership_shapley", n, ms);
    bench::JsonLine("membership_shapley").Int("n", n).Num("ms", ms).Emit();
  }
  ConjunctiveQuery deep_q = MustParseQuery("Q() <- R(x), S(x, y), T(x, y, z)");
  const std::vector<int> deep_sizes =
      args.smoke ? std::vector<int>{64} : std::vector<int>{64, 128, 256};
  for (int n : deep_sizes) {
    Database db = MakeDeepDb(n);
    double ms = bench::TimeMs([&] {
      auto counts = SatisfactionCounts(deep_q, db);
      SHAPCQ_CHECK(counts.ok());
    });
    std::printf("%-24s %6d %12.3f\n", "deep_query_counts", n, ms);
    bench::JsonLine("membership_deep_query").Int("n", n).Num("ms", ms).Emit();
  }
  bench::Rule('=');
  std::printf("E7 result: the membership DP scales polynomially on both "
              "shallow and deep hierarchies.\n");
  return 0;
}
