// Cross-tenant circuit cache + artifact store benchmark.
//
// A fleet of tenants holding renamed copies of the same data (the
// SaaS-serving shape: one schema, per-tenant constants) runs a
// non-hierarchical query, so every exact answer goes through the
// lineage-circuit engine. Three measurements:
//
//   1. cross-tenant sharing — tenant 0 compiles, tenants 1..N-1 hit the
//      canonical-form cache (>0 hits is a hard gate);
//   2. artifact save/load — snapshot the warm cache to disk, drop it,
//      reload (timed, with bytes);
//   3. restart-to-first-answer — cold restart (empty caches, compile
//      everything) vs warm restart (artifact load + serve), both timed to
//      the first tenant's first answer and through the full sweep.
//
// Every path is checked bitwise-identical against an unshared baseline;
// the binary exits non-zero on a mismatch or zero cross-tenant hits.
//
// Usage: bench_artifact_cache [--smoke] [tenants] [facts_per_relation]
//                             [seed]
//   defaults: 32 tenants, 12 facts/relation; --smoke shrinks to CI sizes.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/lineage/circuit_cache.h"
#include "shapcq/lineage/engine.h"
#include "shapcq/persist/artifact.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/plan.h"
#include "shapcq/shapley/solver_options.h"
#include "shapcq/util/rational.h"
#include "shapcq/workload/generators.h"

using namespace shapcq;  // NOLINT: benchmark brevity

namespace {

using Scores = std::vector<std::pair<FactId, Rational>>;

// Tenant t holds the base database with every integer constant shifted
// into a disjoint range: identical lineage shape, zero shared constants.
Database ShiftedCopy(const Database& base, int64_t shift) {
  Database copy;
  for (FactId id = 0; id < base.num_facts(); ++id) {
    const Fact& fact = base.fact(id);
    Tuple args;
    args.reserve(fact.args.size());
    for (const Value& v : fact.args) {
      args.push_back(v.kind() == Value::Kind::kInt ? Value(v.AsInt() + shift)
                                                   : v);
    }
    copy.AddFact(fact.relation, std::move(args), fact.endogenous);
  }
  return copy;
}

Scores MustScoreAll(const AggregateQuery& a, const Database& db,
                    bool share_circuits) {
  SolverOptions options;
  options.num_threads = 1;  // timing compilation, not pool scheduling
  options.lineage.share_circuits = share_circuits;
  auto scores = LineageCircuitScoreAll(a, db, options);
  if (!scores.ok()) {
    std::fprintf(stderr, "LineageCircuitScoreAll failed: %s\n",
                 scores.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(scores).value();
}

bool Identical(const Scores& a, const Scores& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].first != b[i].first || a[i].second != b[i].second) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::ParseArgs(argc, argv);
  const int tenants = args.Int(0, args.smoke ? 8 : 32);
  const int facts_per_relation = args.Int(1, args.smoke ? 6 : 12);
  const uint64_t seed = static_cast<uint64_t>(args.Int64(2, 1));
  const std::string artifact_dir =
      "/tmp/shapcq_bench_artifacts_" + std::to_string(seed);

  // Non-hierarchical (the atoms of x and y overlap on R without
  // containment): the tractable DPs refuse it, so attribution runs on
  // compiled circuits — the state this cache and store exist for.
  ConjunctiveQuery q = MustParseQuery("Q() <- R(x, y), S(y), T(x)");
  AggregateQuery a{q, MakeConstantTau(Rational(1)), AggregateFunction::Count()};

  RandomDatabaseOptions db_options;
  db_options.facts_per_relation = facts_per_relation;
  db_options.endogenous_percent = 90;
  db_options.seed = seed;
  Database base = RandomDatabaseForQuery(q, db_options);

  std::vector<Database> fleet;
  fleet.reserve(static_cast<size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    fleet.push_back(ShiftedCopy(base, static_cast<int64_t>(t) * 1000000));
  }
  std::printf("artifact cache bench: %s\n", a.ToString().c_str());
  std::printf("tenants=%d facts/relation=%d endogenous/tenant=%d\n", tenants,
              facts_per_relation, base.num_endogenous());
  bench::Rule();

  // Unshared baseline: the bitwise oracle for every cached/persisted path.
  std::vector<Scores> baseline(static_cast<size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    baseline[static_cast<size_t>(t)] =
        MustScoreAll(a, fleet[static_cast<size_t>(t)], false);
  }

  // --- Phase 1: cross-tenant sharing --------------------------------------
  CircuitCache::Global().Clear();
  bool identical = true;
  double first_tenant_ms = bench::TimeMs([&] {
    identical = Identical(MustScoreAll(a, fleet[0], true), baseline[0]);
  });
  CircuitCache::Stats after_first = CircuitCache::Global().stats();
  double rest_ms = bench::TimeMs([&] {
    for (int t = 1; t < tenants; ++t) {
      identical = Identical(MustScoreAll(a, fleet[static_cast<size_t>(t)],
                                         true),
                            baseline[static_cast<size_t>(t)]) &&
                  identical;
    }
  });
  CircuitCache::Stats shared = CircuitCache::Global().stats();
  const unsigned long long cross_tenant_hits = shared.hits;
  std::printf("tenant 0 (compiles) : %8.2f ms\n", first_tenant_ms);
  std::printf("tenants 1..%-3d      : %8.2f ms  (%.2f ms/tenant, "
              "%llu cache hits)\n",
              tenants - 1, rest_ms, rest_ms / (tenants > 1 ? tenants - 1 : 1),
              cross_tenant_hits);

  // --- Phase 2: artifact save/load ----------------------------------------
  ArtifactWriter writer(artifact_dir);
  StatusOr<ArtifactWriteStats> written = InvalidArgumentError("unset");
  double save_ms = bench::TimeMs([&] {
    written = writer.WriteCircuits(CircuitCache::Global().Snapshot());
  });
  if (!written.ok()) {
    std::fprintf(stderr, "WriteCircuits failed: %s\n",
                 written.status().ToString().c_str());
    return 1;
  }
  CircuitCache::Global().Clear();
  ArtifactReader reader(artifact_dir);
  StatusOr<ArtifactLoadStats> loaded = InvalidArgumentError("unset");
  double load_ms = bench::TimeMs([&] {
    loaded = reader.ReadCircuits(&CircuitCache::Global());
  });
  if (!loaded.ok() || !loaded->found || loaded->circuits == 0) {
    std::fprintf(stderr, "ReadCircuits failed or loaded nothing\n");
    return 1;
  }
  std::printf("artifact save       : %8.2f ms  (%llu circuits, %llu bytes)\n",
              save_ms, static_cast<unsigned long long>(written->circuits),
              static_cast<unsigned long long>(written->bytes));
  std::printf("artifact load       : %8.2f ms  (%llu circuits, %llu skipped)\n",
              load_ms, static_cast<unsigned long long>(loaded->circuits),
              static_cast<unsigned long long>(loaded->skipped));

  // --- Phase 3: restart-to-first-answer, cold vs warm ---------------------
  CircuitCache::Global().Clear();
  double cold_first_ms = bench::TimeMs([&] {
    identical = Identical(MustScoreAll(a, fleet[0], true), baseline[0]) &&
                identical;
  });
  double cold_sweep_ms = cold_first_ms + bench::TimeMs([&] {
    for (int t = 1; t < tenants; ++t) {
      MustScoreAll(a, fleet[static_cast<size_t>(t)], true);
    }
  });

  CircuitCache::Global().Clear();
  double warm_first_ms = bench::TimeMs([&] {
    StatusOr<ArtifactLoadStats> reloaded =
        reader.ReadCircuits(&CircuitCache::Global());
    if (!reloaded.ok()) std::exit(1);
    identical = Identical(MustScoreAll(a, fleet[0], true), baseline[0]) &&
                identical;
  });
  double warm_sweep_ms = warm_first_ms + bench::TimeMs([&] {
    for (int t = 1; t < tenants; ++t) {
      MustScoreAll(a, fleet[static_cast<size_t>(t)], true);
    }
  });
  double first_speedup =
      warm_first_ms > 0 ? cold_first_ms / warm_first_ms : 0.0;
  double sweep_speedup =
      warm_sweep_ms > 0 ? cold_sweep_ms / warm_sweep_ms : 0.0;
  bench::Rule();
  std::printf("restart to first answer: cold %8.2f ms   warm %8.2f ms "
              "(%.2fx)\n",
              cold_first_ms, warm_first_ms, first_speedup);
  std::printf("restart to full sweep  : cold %8.2f ms   warm %8.2f ms "
              "(%.2fx)\n",
              cold_sweep_ms, warm_sweep_ms, sweep_speedup);
  std::printf("cross-tenant hits: %llu   identical results: %s\n\n",
              cross_tenant_hits, identical ? "yes" : "NO — BUG");

  bench::JsonLine("artifact_cache")
      .Str("query", q.ToString())
      .Int("tenants", tenants)
      .Int("facts_per_relation", facts_per_relation)
      .Int("endogenous_per_tenant", base.num_endogenous())
      .Num("first_tenant_ms", first_tenant_ms)
      .Num("shared_rest_ms", rest_ms)
      .Int("cross_tenant_hits",
           static_cast<long long>(cross_tenant_hits))
      .Int("cache_inserts", static_cast<long long>(after_first.inserts))
      .Num("save_ms", save_ms)
      .Num("load_ms", load_ms)
      .Int("artifact_bytes", static_cast<long long>(written->bytes))
      .Int("circuits_persisted", static_cast<long long>(written->circuits))
      .Int("circuits_loaded", static_cast<long long>(loaded->circuits))
      .Num("cold_first_answer_ms", cold_first_ms)
      .Num("warm_first_answer_ms", warm_first_ms)
      .Num("first_answer_speedup", first_speedup)
      .Num("cold_sweep_ms", cold_sweep_ms)
      .Num("warm_sweep_ms", warm_sweep_ms)
      .Num("sweep_speedup", sweep_speedup)
      .Bool("identical", identical)
      .Int("peak_rss_bytes", static_cast<long long>(bench::PeakRssBytes()))
      .Emit();

  std::remove((artifact_dir + "/" + kCircuitArtifactFile).c_str());
  // A shared-shape fleet that never shares, or a cached path that changes
  // any bit of any score, is a regression this binary exists to catch.
  if (cross_tenant_hits == 0) {
    std::fprintf(stderr, "FAIL: zero cross-tenant cache hits\n");
    return 1;
  }
  return identical ? 0 : 1;
}
