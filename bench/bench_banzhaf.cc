// Experiment E8: Shapley-like scores from the same sum_k series (the
// paper's Section 3.2 remark). We compute Shapley and Banzhaf for the same
// facts from identical engine runs and compare both the values and the
// (near-identical) cost.

#include <cstdio>

#include "bench_util.h"
#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/shapley/min_max.h"
#include "shapcq/shapley/score.h"

using namespace shapcq;  // NOLINT

int main(int argc, char** argv) {
  bench::Args args = bench::ParseArgs(argc, argv);
  std::printf("E8: Shapley vs Banzhaf from the same sum_k machinery "
              "(Max ∘ tau_id ∘ Q_xyy)\n");
  bench::Rule('=');
  const int n = args.smoke ? 10 : 24;
  const int groups = args.smoke ? 3 : 6;
  Database db;
  for (int i = 0; i < n; ++i) {
    db.AddEndogenous("R", {Value((i / groups) % 9 - 3), Value(i % groups)});
  }
  for (int g = 0; g < groups; ++g) db.AddEndogenous("S", {Value(g)});
  ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  AggregateQuery a{q, MakeTauId(0), AggregateFunction::Max()};

  std::printf("%-22s %16s %16s\n", "fact", "Shapley", "Banzhaf");
  bench::Rule();
  double shapley_ms = 0, banzhaf_ms = 0;
  int shown = 0;
  for (FactId f : db.EndogenousFacts()) {
    Rational shapley, banzhaf;
    shapley_ms += bench::TimeMs([&] {
      shapley = *ScoreViaSumK(a, db, f, MinMaxSumK, ScoreKind::kShapley);
    });
    banzhaf_ms += bench::TimeMs([&] {
      banzhaf = *ScoreViaSumK(a, db, f, MinMaxSumK, ScoreKind::kBanzhaf);
    });
    if (shown < 8) {
      std::printf("%-22s %16.6f %16.6f\n", db.fact(f).ToString().c_str(),
                  shapley.ToDouble(), banzhaf.ToDouble());
      ++shown;
    }
  }
  bench::Rule();
  std::printf("total time over %d facts: Shapley %.1f ms, Banzhaf %.1f ms "
              "(same engine, different coefficients)\n",
              db.num_endogenous(), shapley_ms, banzhaf_ms);

  // Cross-check both against brute force on a small instance.
  Database small;
  for (int i = 0; i < 8; ++i) {
    small.AddEndogenous("R", {Value(i % 5 - 1), Value(i % 3)});
  }
  for (int g = 0; g < 3; ++g) small.AddEndogenous("S", {Value(g)});
  bool all_ok = true;
  for (FactId f : small.EndogenousFacts()) {
    all_ok = all_ok &&
             *ScoreViaSumK(a, small, f, MinMaxSumK, ScoreKind::kShapley) ==
                 *BruteForceScore(a, small, f, ScoreKind::kShapley);
    all_ok = all_ok &&
             *ScoreViaSumK(a, small, f, MinMaxSumK, ScoreKind::kBanzhaf) ==
                 *BruteForceScore(a, small, f, ScoreKind::kBanzhaf);
  }
  bench::Rule('=');
  std::printf("E8 result: %s — both scores drop out of the same sum_k "
              "series, confirming the Shapley-like-scores remark.\n",
              all_ok ? "verified against brute force" : "MISMATCH");
  bench::JsonLine("banzhaf")
      .Str("agg", "Max")
      .Int("endogenous", db.num_endogenous())
      .Num("shapley_ms", shapley_ms)
      .Num("banzhaf_ms", banzhaf_ms)
      .Bool("verified", all_ok)
      .Emit();
  return all_ok ? 0 : 1;
}
