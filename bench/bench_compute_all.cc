// All-facts attribution throughput: per-fact Compute loop vs. the batched
// SolverSession::ComputeAll, on generated Sum and Max workloads.
//
// This is the acceptance benchmark for the batched engine scorers:
// ComputeAll must produce bitwise-identical Rational scores while sharing
// the homomorphism enumeration, answer binding, relevance splits, anchor
// sets, and DP scaffolding across facts — and, since the ScoreAllFn
// signature carries SolverOptions, sharding internally over worker
// threads. One BENCH_JSON line per workload for the trajectory.
//
// Usage: bench_compute_all [--smoke] [facts_per_relation] [domain_size]
//                          [seed]
//   defaults: 200 50 1 for Sum (≈240 endogenous facts over R, S, T; the
//   unary relations cap at domain_size+1 distinct facts, so the domain
//   must grow with the requested fact count); the Max workload runs at a
//   quarter of the Sum size (its DP is heavier per fact). --smoke shrinks
//   to CI sizes.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/session.h"
#include "shapcq/shapley/solver.h"
#include "shapcq/workload/generators.h"

using namespace shapcq;  // NOLINT: benchmark brevity

namespace {

// Runs one (aggregate, query, database) workload through the batched
// session and the per-fact loop; returns false on a value mismatch.
bool RunWorkload(const char* label, const AggregateQuery& a,
                 const Database& db) {
  ShapleySolver solver(a);
  const std::vector<FactId> facts = db.EndogenousFacts();
  const int n = static_cast<int>(facts.size());

  std::printf("%s: %s\n", label, a.ToString().c_str());
  std::printf("facts=%d endogenous=%d\n", db.num_facts(), n);
  bench::Rule();

  // Batched: one session, shared state, the engine's score_all underneath.
  // Pinned to one worker so the reported speedup is the algorithmic
  // sharing alone (comparable across machines); pass --threads through
  // shapcq_cli to see the additional thread-sharding win.
  SolverOptions one_thread;
  one_thread.num_threads = 1;
  std::vector<std::pair<FactId, SolveResult>> batched;
  bench::AllocDelta batched_alloc;
  double batched_ms = bench::TimeMs([&] {
    batched_alloc = bench::MeasureAlloc([&] {
      auto results = solver.ComputeAll(db, one_thread);
      if (!results.ok()) {
        std::fprintf(stderr, "ComputeAll failed: %s\n",
                     results.status().ToString().c_str());
        std::exit(1);
      }
      batched = std::move(results).value();
    });
  });
  std::printf("batched ComputeAll  : %10.1f ms  (%.1f facts/s)\n", batched_ms,
              1000.0 * n / batched_ms);

  // Per-fact: the pre-session code path — every fact rebuilds everything.
  std::vector<std::pair<FactId, SolveResult>> per_fact;
  per_fact.reserve(facts.size());
  double per_fact_ms = bench::TimeMs([&] {
    for (FactId fact : facts) {
      auto result = solver.Compute(db, fact);
      if (!result.ok()) {
        std::fprintf(stderr, "Compute failed: %s\n",
                     result.status().ToString().c_str());
        std::exit(1);
      }
      per_fact.emplace_back(fact, std::move(result).value());
    }
  });
  std::printf("per-fact Compute    : %10.1f ms  (%.1f facts/s)\n", per_fact_ms,
              1000.0 * n / per_fact_ms);

  // Bitwise equality of the exact rational scores.
  bool identical = batched.size() == per_fact.size();
  for (size_t i = 0; identical && i < batched.size(); ++i) {
    identical = batched[i].first == per_fact[i].first &&
                batched[i].second.is_exact && per_fact[i].second.is_exact &&
                batched[i].second.exact == per_fact[i].second.exact;
  }
  double speedup = batched_ms > 0 ? per_fact_ms / batched_ms : 0.0;
  bench::Rule();
  std::printf("speedup: %.2fx   identical results: %s\n\n", speedup,
              identical ? "yes" : "NO — BUG");
  bench::JsonLine("compute_all")
      .Str("query", a.query.ToString())
      .Str("agg", a.alpha.ToString())
      .Int("facts", db.num_facts())
      .Int("endogenous", n)
      .Int("batched_threads", 1)
      .Num("per_fact_ms", per_fact_ms)
      .Num("batched_ms", batched_ms)
      .Num("per_fact_facts_per_sec", 1000.0 * n / per_fact_ms)
      .Num("batched_facts_per_sec", 1000.0 * n / batched_ms)
      .Num("speedup", speedup)
      .Bool("identical", identical)
      .Int("batched_alloc_bytes", static_cast<long long>(batched_alloc.bytes))
      .Int("batched_alloc_calls", static_cast<long long>(batched_alloc.calls))
      .Int("peak_rss_bytes", static_cast<long long>(bench::PeakRssBytes()))
      .Emit();
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::ParseArgs(argc, argv);
  int facts_per_relation = args.Int(0, args.smoke ? 24 : 200);
  int domain_size = args.Int(1, args.smoke ? 8 : 50);
  uint64_t seed = static_cast<uint64_t>(args.Int64(2, 1));

  bool ok = true;

  {
    // ∃-hierarchical (not all-hierarchical): the Sum frontier's home turf.
    ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x), S(x, y), T(y)");
    RandomDatabaseOptions options;
    options.facts_per_relation = facts_per_relation;
    options.domain_size = domain_size;
    options.endogenous_percent = 80;
    options.seed = seed;
    Database db = RandomDatabaseForQuery(q, options);
    AggregateQuery a{q, MakeTauId(0), AggregateFunction::Sum()};
    ok = RunWorkload("compute-all throughput (Sum)", a, db) && ok;
  }

  {
    // All-hierarchical with a localized τ: the batched Min/Max DP. A
    // quarter of the Sum size — each per-fact step runs the anchor DP
    // twice over the whole database.
    ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
    RandomDatabaseOptions options;
    options.facts_per_relation =
        facts_per_relation >= 4 ? facts_per_relation / 4 : facts_per_relation;
    options.domain_size = domain_size;
    options.endogenous_percent = 80;
    options.seed = seed;
    Database db = RandomDatabaseForQuery(q, options);
    AggregateQuery a{q, MakeTauId(0), AggregateFunction::Max()};
    ok = RunWorkload("compute-all throughput (Max)", a, db) && ok;
  }

  return ok ? 0 : 1;
}
