// Experiment E3: the dichotomy shape — exact cost inside vs outside the
// q-hierarchical frontier for Avg (Theorem 5.1).
//
// Inside:  Avg ∘ τ_id ∘ Q^full_xyy(x, y) <- R(x, y), S(y)   (q-hierarchical,
//          quintuple DP, polynomial).
// Outside: Avg ∘ τ_ReLU ∘ Q_xyy(x) <- R(x, y), S(y)          (all-hier but
//          not q-hier; the paper proves FP^#P-hardness, so the only exact
//          option is exponential subset enumeration).
//
// Identical databases, growing n. The table shows the polynomial engine
// pulling away from the exponential baseline — the "who wins and where"
// shape of the dichotomy.
//
// E3b extends the experiment to the lineage-circuit engine (PR 5): on the
// hard side of the Sum/Count frontier (a non-∃-hierarchical chain query,
// FP#P-hard in general) the circuit engine is exact at any player count
// the lineage structure affords — it matches brute force bitwise while it
// is feasible, then keeps going far past the 26-player horizon where the
// previous chain could only sample.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/lineage/engine.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/avg_quantile.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/shapley/score.h"
#include "shapcq/shapley/session.h"
#include "shapcq/shapley/solver_options.h"
#include "shapcq/workload/generators.h"

using namespace shapcq;  // NOLINT

namespace {

Database MakeDb(int n) {
  Database db;
  int groups = n / 4 + 1;
  for (int i = 0; i < n; ++i) {
    db.AddEndogenous("R", {Value((i / groups) % 5 - 2), Value(i % groups)});
  }
  for (int g = 0; g < groups; ++g) db.AddEndogenous("S", {Value(g)});
  return db;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::ParseArgs(argc, argv);
  std::printf("E3: exact cost inside vs outside the Avg frontier "
              "(Theorem 5.1)\n");
  bench::Rule('=');
  std::printf("%6s %10s %18s %22s\n", "n", "|D_n|", "inside: DP (ms)",
              "outside: brute force (ms)");
  bench::Rule();
  ConjunctiveQuery inside_q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
  ConjunctiveQuery outside_q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  const std::vector<int> crossover_sizes =
      args.smoke ? std::vector<int>{6, 8}
                 : std::vector<int>{6, 8, 10, 12, 14, 16, 18};
  for (int n : crossover_sizes) {
    Database db = MakeDb(n);
    int players = db.num_endogenous();
    AggregateQuery inside{inside_q, MakeTauId(0), AggregateFunction::Avg()};
    AggregateQuery outside{outside_q, MakeTauReLU(0),
                           AggregateFunction::Avg()};
    FactId probe = db.EndogenousFacts().front();
    double dp_ms = bench::TimeMs([&] {
      auto r = ScoreViaSumK(inside, db, probe, AvgQuantileSumK);
      if (!r.ok()) std::abort();
    });
    double bf_ms = bench::TimeMs([&] {
      auto r = BruteForceScore(outside, db, probe);
      if (!r.ok()) std::abort();
    });
    std::printf("%6d %10d %18.2f %22.2f\n", n, players, dp_ms, bf_ms);
    bench::JsonLine("hardness_crossover")
        .Int("n", n)
        .Int("players", players)
        .Num("inside_dp_ms", dp_ms)
        .Num("outside_brute_force_ms", bf_ms)
        .Emit();
  }
  bench::Rule();
  // Beyond the brute-force horizon the DP keeps going.
  std::printf("beyond the brute-force horizon (DP only):\n");
  const std::vector<int> dp_sizes =
      args.smoke ? std::vector<int>{16} : std::vector<int>{32, 48, 64};
  for (int n : dp_sizes) {
    Database db = MakeDb(n);
    AggregateQuery inside{inside_q, MakeTauId(0), AggregateFunction::Avg()};
    FactId probe = db.EndogenousFacts().front();
    double dp_ms = bench::TimeMs([&] {
      auto r = ScoreViaSumK(inside, db, probe, AvgQuantileSumK);
      if (!r.ok()) std::abort();
    });
    std::printf("%6d %10d %18.2f %22s\n", n, db.num_endogenous(), dp_ms,
                "(2^n infeasible)");
    bench::JsonLine("hardness_crossover_dp_only")
        .Int("n", n)
        .Int("players", db.num_endogenous())
        .Num("inside_dp_ms", dp_ms)
        .Emit();
  }
  bench::Rule('=');
  std::printf("E3 result: brute force roughly doubles per +1 player "
              "(exponential); the q-hierarchical DP grows polynomially and "
              "continues far past the brute-force horizon.\n\n");

  // E3b: the lineage-circuit engine on the hard side of the Sum frontier.
  ConjunctiveQuery chain_q =
      MustParseQuery("Q(z) <- R(z, x), S(x, y), T(y)");
  AggregateQuery chain{chain_q, MakeTauId(0), AggregateFunction::Sum()};
  std::printf("E3b: exact Sum attribution OUTSIDE the frontier "
              "(lineage circuits vs brute force)\n");
  bench::Rule('=');
  std::printf("%8s %12s %16s %14s %10s\n", "players", "brute (ms)",
              "circuit (ms)", "nodes", "bitwise");
  bench::Rule();
  const std::vector<int> circuit_crossover =
      args.smoke ? std::vector<int>{2} : std::vector<int>{1, 2, 3};
  for (int groups : circuit_crossover) {
    Database db = BlockChainDatabase(groups);
    SolverOptions options;
    options.num_threads = 1;
    StatusOr<std::vector<std::pair<FactId, Rational>>> circuit =
        UnsupportedError("unset");
    bench::AllocDelta circuit_alloc;
    double circuit_ms = bench::TimeMs([&] {
      circuit_alloc = bench::MeasureAlloc(
          [&] { circuit = LineageCircuitScoreAll(chain, db, options); });
    });
    if (!circuit.ok()) std::abort();
    StatusOr<std::vector<std::pair<FactId, Rational>>> brute =
        UnsupportedError("unset");
    double brute_ms =
        bench::TimeMs([&] { brute = BruteForceScoreAll(chain, db); });
    if (!brute.ok()) std::abort();
    bool identical = circuit->size() == brute->size();
    for (size_t i = 0; identical && i < brute->size(); ++i) {
      identical = (*circuit)[i].first == (*brute)[i].first &&
                  (*circuit)[i].second == (*brute)[i].second;
    }
    if (!identical) std::abort();  // the engines must agree bit for bit
    LineageStatsSnapshot stats = LineageStats::Global().Snapshot();
    std::printf("%8d %12.2f %16.2f %14llu %10s\n", db.num_endogenous(),
                brute_ms, circuit_ms,
                static_cast<unsigned long long>(stats.circuit_nodes),
                "yes");
    bench::JsonLine("hardness_crossover_circuit")
        .Int("players", db.num_endogenous())
        .Num("brute_force_ms", brute_ms)
        .Num("circuit_ms", circuit_ms)
        .Int("circuit_nodes", static_cast<int64_t>(stats.circuit_nodes))
        .Bool("bitwise_identical", identical)
        .Int("circuit_alloc_bytes",
             static_cast<long long>(circuit_alloc.bytes))
        .Int("circuit_alloc_calls",
             static_cast<long long>(circuit_alloc.calls))
        .Emit();
    LineageStats::Global().Reset();
  }
  bench::Rule();
  std::printf("beyond the brute-force horizon (exact circuits; previously "
              "Monte Carlo only):\n");
  const std::vector<int> circuit_groups =
      args.smoke ? std::vector<int>{6} : std::vector<int>{6, 8, 10, 16};
  for (int groups : circuit_groups) {
    Database db = BlockChainDatabase(groups);
    SolverOptions options;
    SolverSession session(chain, db);
    StatusOr<std::vector<std::pair<FactId, SolveResult>>> results =
        UnsupportedError("unset");
    bench::AllocDelta exact_alloc;
    double exact_ms = bench::TimeMs([&] {
      exact_alloc = bench::MeasureAlloc(
          [&] { results = session.ComputeAll(options); });
    });
    if (!results.ok()) std::abort();
    int exact_facts = 0;
    for (const auto& [fact, result] : *results) {
      if (result.is_exact && result.algorithm == "lineage-circuit") {
        ++exact_facts;
      }
    }
    if (exact_facts != db.num_endogenous()) std::abort();
    // The old chain's only option at this size: sampling.
    SolverOptions mc;
    mc.method = SolveMethod::kMonteCarlo;
    mc.monte_carlo.num_samples = 1000;
    StatusOr<std::vector<std::pair<FactId, SolveResult>>> sampled =
        UnsupportedError("unset");
    double mc_ms = bench::TimeMs([&] { sampled = session.ComputeAll(mc); });
    if (!sampled.ok()) std::abort();
    LineageStatsSnapshot stats = LineageStats::Global().Snapshot();
    std::printf("%8d %12s %16.2f %14llu   (mc-1000: %.2f ms, inexact)\n",
                db.num_endogenous(), "(2^n infeasible)", exact_ms,
                static_cast<unsigned long long>(stats.circuit_nodes), mc_ms);
    bench::JsonLine("hardness_crossover_circuit_exact")
        .Int("players", db.num_endogenous())
        .Num("circuit_exact_ms", exact_ms)
        .Int("circuit_nodes", static_cast<int64_t>(stats.circuit_nodes))
        .Int("exact_facts", exact_facts)
        .Num("monte_carlo_1000_ms", mc_ms)
        .Int("circuit_alloc_bytes", static_cast<long long>(exact_alloc.bytes))
        .Int("circuit_alloc_calls", static_cast<long long>(exact_alloc.calls))
        .Int("peak_rss_bytes", static_cast<long long>(bench::PeakRssBytes()))
        .Emit();
    LineageStats::Global().Reset();
  }
  bench::Rule('=');
  std::printf("E3b result: the circuit engine matches brute force bitwise "
              "while 2^n is feasible, then stays exact far beyond it — "
              "cost tracks lineage structure, not player count.\n");
  return 0;
}
