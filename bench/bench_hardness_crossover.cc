// Experiment E3: the dichotomy shape — exact cost inside vs outside the
// q-hierarchical frontier for Avg (Theorem 5.1).
//
// Inside:  Avg ∘ τ_id ∘ Q^full_xyy(x, y) <- R(x, y), S(y)   (q-hierarchical,
//          quintuple DP, polynomial).
// Outside: Avg ∘ τ_ReLU ∘ Q_xyy(x) <- R(x, y), S(y)          (all-hier but
//          not q-hier; the paper proves FP^#P-hardness, so the only exact
//          option is exponential subset enumeration).
//
// Identical databases, growing n. The table shows the polynomial engine
// pulling away from the exponential baseline — the "who wins and where"
// shape of the dichotomy.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/avg_quantile.h"
#include "shapcq/shapley/brute_force.h"
#include "shapcq/shapley/score.h"

using namespace shapcq;  // NOLINT

namespace {

Database MakeDb(int n) {
  Database db;
  int groups = n / 4 + 1;
  for (int i = 0; i < n; ++i) {
    db.AddEndogenous("R", {Value((i / groups) % 5 - 2), Value(i % groups)});
  }
  for (int g = 0; g < groups; ++g) db.AddEndogenous("S", {Value(g)});
  return db;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::ParseArgs(argc, argv);
  std::printf("E3: exact cost inside vs outside the Avg frontier "
              "(Theorem 5.1)\n");
  bench::Rule('=');
  std::printf("%6s %10s %18s %22s\n", "n", "|D_n|", "inside: DP (ms)",
              "outside: brute force (ms)");
  bench::Rule();
  ConjunctiveQuery inside_q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
  ConjunctiveQuery outside_q = MustParseQuery("Q(x) <- R(x, y), S(y)");
  const std::vector<int> crossover_sizes =
      args.smoke ? std::vector<int>{6, 8}
                 : std::vector<int>{6, 8, 10, 12, 14, 16, 18};
  for (int n : crossover_sizes) {
    Database db = MakeDb(n);
    int players = db.num_endogenous();
    AggregateQuery inside{inside_q, MakeTauId(0), AggregateFunction::Avg()};
    AggregateQuery outside{outside_q, MakeTauReLU(0),
                           AggregateFunction::Avg()};
    FactId probe = db.EndogenousFacts().front();
    double dp_ms = bench::TimeMs([&] {
      auto r = ScoreViaSumK(inside, db, probe, AvgQuantileSumK);
      if (!r.ok()) std::abort();
    });
    double bf_ms = bench::TimeMs([&] {
      auto r = BruteForceScore(outside, db, probe);
      if (!r.ok()) std::abort();
    });
    std::printf("%6d %10d %18.2f %22.2f\n", n, players, dp_ms, bf_ms);
    bench::JsonLine("hardness_crossover")
        .Int("n", n)
        .Int("players", players)
        .Num("inside_dp_ms", dp_ms)
        .Num("outside_brute_force_ms", bf_ms)
        .Emit();
  }
  bench::Rule();
  // Beyond the brute-force horizon the DP keeps going.
  std::printf("beyond the brute-force horizon (DP only):\n");
  const std::vector<int> dp_sizes =
      args.smoke ? std::vector<int>{16} : std::vector<int>{32, 48, 64};
  for (int n : dp_sizes) {
    Database db = MakeDb(n);
    AggregateQuery inside{inside_q, MakeTauId(0), AggregateFunction::Avg()};
    FactId probe = db.EndogenousFacts().front();
    double dp_ms = bench::TimeMs([&] {
      auto r = ScoreViaSumK(inside, db, probe, AvgQuantileSumK);
      if (!r.ok()) std::abort();
    });
    std::printf("%6d %10d %18.2f %22s\n", n, db.num_endogenous(), dp_ms,
                "(2^n infeasible)");
    bench::JsonLine("hardness_crossover_dp_only")
        .Int("n", n)
        .Int("players", db.num_endogenous())
        .Num("inside_dp_ms", dp_ms)
        .Emit();
  }
  bench::Rule('=');
  std::printf("E3 result: brute force roughly doubles per +1 player "
              "(exponential); the q-hierarchical DP grows polynomially and "
              "continues far past the brute-force horizon.\n");
  return 0;
}
