// Experiment E1: reproduce Figure 1 of the paper.
//
// Recomputes, from the implementation, (a) the classification of the
// figure's example CQs, (b) the containment chain of the four hierarchy
// classes, and (c) the tractability-frontier annotation of every aggregate
// function, and prints them as a table. A mismatch with the paper would
// print MISMATCH and exit nonzero.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "shapcq/agg/aggregate.h"
#include "shapcq/hierarchy/classification.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/solver.h"

using namespace shapcq;  // NOLINT

int main(int argc, char** argv) {
  // Classification is already instant; --smoke changes nothing but is
  // accepted so the bench_smoke ctest label can pass it uniformly.
  bench::Args args = bench::ParseArgs(argc, argv);
  (void)args;
  double total_ms = 0;
  int mismatches = 0;
  std::printf("E1: Figure 1 — containment among CQ classes and tractability "
              "frontiers\n");
  bench::Rule('=');

  // (a) Example CQs of Figure 1, annotated with the class the figure
  // places them in.
  struct ExampleRow {
    const char* query;
    HierarchyClass expected;
  };
  std::vector<ExampleRow> examples = {
      {"Q(x) <- R(x), S(x, y)", HierarchyClass::kSqHierarchical},
      {"Q(x, y) <- R(x), S(x, y)", HierarchyClass::kQHierarchical},
      {"Q(y) <- R(x), S(x, y)", HierarchyClass::kAllHierarchical},
      {"Q(x) <- R(x), S(x, y), T(y)", HierarchyClass::kExistsHierarchical},
      {"Q() <- R(x), S(x, y), T(y)", HierarchyClass::kGeneral},
  };
  std::printf("%-36s %-22s %-22s %s\n", "example CQ (Figure 1)",
              "computed class", "paper class", "verdict");
  bench::Rule();
  for (const ExampleRow& row : examples) {
    ConjunctiveQuery q = MustParseQuery(row.query);
    HierarchyClass computed;
    total_ms += bench::TimeMs([&] { computed = Classify(q); });
    bool ok = computed == row.expected;
    if (!ok) ++mismatches;
    std::printf("%-36s %-22s %-22s %s\n", row.query,
                HierarchyClassName(computed),
                HierarchyClassName(row.expected), ok ? "ok" : "MISMATCH");
  }

  // (b) Containment chain over a query gallery.
  std::printf("\nContainment chain (sq -> q -> all -> exists) over a gallery "
              "of %d CQs: ", 12);
  std::vector<std::string> gallery = {
      "Q(x) <- R(x), S(x, y)",        "Q(x, y) <- R(x), S(x, y)",
      "Q(y) <- R(x), S(x, y)",        "Q(x) <- R(x), S(x, y), T(y)",
      "Q() <- R(x), S(x, y), T(y)",   "Q(x) <- R(x, y), S(y)",
      "Q(x, y) <- R(x, y), S(y)",     "Q(x, z) <- R(x, y), S(y), T(z)",
      "Q(x) <- R(x)",                 "Q(x, y) <- R(x, y)",
      "Q(a, b) <- R(a, b, c), S(b)",  "Q(x, z) <- R(x), T(z)",
  };
  bool chain_ok = true;
  for (const std::string& text : gallery) {
    ConjunctiveQuery q = MustParseQuery(text);
    if (IsSqHierarchical(q) && !IsQHierarchical(q)) chain_ok = false;
    if (IsQHierarchical(q) && !IsAllHierarchical(q)) chain_ok = false;
    if (IsAllHierarchical(q) && !IsExistsHierarchical(q)) chain_ok = false;
  }
  std::printf("%s\n", chain_ok ? "ok" : "MISMATCH");
  if (!chain_ok) ++mismatches;

  // (c) Tractability frontier per aggregate (the box annotations).
  struct FrontierRow {
    AggregateFunction alpha;
    HierarchyClass expected;
  };
  std::vector<FrontierRow> frontiers = {
      {AggregateFunction::Sum(), HierarchyClass::kExistsHierarchical},
      {AggregateFunction::Count(), HierarchyClass::kExistsHierarchical},
      {AggregateFunction::CountDistinct(), HierarchyClass::kAllHierarchical},
      {AggregateFunction::Min(), HierarchyClass::kAllHierarchical},
      {AggregateFunction::Max(), HierarchyClass::kAllHierarchical},
      {AggregateFunction::Avg(), HierarchyClass::kQHierarchical},
      {AggregateFunction::Median(), HierarchyClass::kQHierarchical},
      {AggregateFunction::Quantile(Rational(BigInt(1), BigInt(4))),
       HierarchyClass::kQHierarchical},
      {AggregateFunction::HasDuplicates(), HierarchyClass::kSqHierarchical},
  };
  std::printf("\n%-16s %-24s %-24s %s\n", "aggregate", "computed frontier",
              "paper frontier", "verdict");
  bench::Rule();
  for (const FrontierRow& row : frontiers) {
    HierarchyClass computed = TractabilityFrontier(row.alpha);
    bool ok = computed == row.expected;
    if (!ok) ++mismatches;
    std::printf("%-16s %-24s %-24s %s\n", row.alpha.ToString().c_str(),
                HierarchyClassName(computed),
                HierarchyClassName(row.expected), ok ? "ok" : "MISMATCH");
  }

  // (d) Frontier membership of each example CQ per aggregate — the body of
  // the figure read as a matrix.
  std::printf("\nFrontier membership matrix (1 = inside / tractable for "
              "every localized tau):\n%-36s", "CQ \\ aggregate");
  std::vector<AggregateFunction> columns = {
      AggregateFunction::Sum(), AggregateFunction::Max(),
      AggregateFunction::Avg(), AggregateFunction::HasDuplicates()};
  for (const AggregateFunction& alpha : columns) {
    std::printf(" %8s", alpha.ToString().c_str());
  }
  std::printf("\n");
  bench::Rule();
  for (const ExampleRow& row : examples) {
    ConjunctiveQuery q = MustParseQuery(row.query);
    std::printf("%-36s", row.query);
    for (const AggregateFunction& alpha : columns) {
      std::printf(" %8d", IsInsideFrontier(alpha, q) ? 1 : 0);
    }
    std::printf("\n");
  }

  bench::Rule('=');
  std::printf("E1 result: %s (%d mismatches)\n",
              mismatches == 0 ? "REPRODUCED" : "FAILED", mismatches);
  bench::JsonLine("fig1_classification")
      .Int("examples", static_cast<long long>(examples.size()))
      .Int("frontiers", static_cast<long long>(frontiers.size()))
      .Int("mismatches", mismatches)
      .Num("classify_ms", total_ms)
      .Emit();
  return mismatches == 0 ? 0 : 1;
}
