// Small shared helpers for the experiment binaries (E1..E9).

#ifndef SHAPCQ_BENCH_BENCH_UTIL_H_
#define SHAPCQ_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>

namespace shapcq::bench {

// Wall-clock milliseconds of one invocation.
inline double TimeMs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

inline void Rule(char c = '-') {
  for (int i = 0; i < 78; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace shapcq::bench

#endif  // SHAPCQ_BENCH_BENCH_UTIL_H_
