// Small shared helpers for the experiment binaries (E1..E9).
//
// Every bench emits machine-readable `BENCH_JSON {...}` lines through
// JsonLine so the bench trajectory can be scraped from CI logs, and every
// bench accepts `--smoke` (parsed by ParseArgs) to run with tiny sizes —
// the `bench_smoke` ctest label runs all of them in seconds.

#ifndef SHAPCQ_BENCH_BENCH_UTIL_H_
#define SHAPCQ_BENCH_BENCH_UTIL_H_

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <new>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace shapcq::bench {

// ---------------------------------------------------------------------------
// Allocation telemetry: a counting replacement operator new/delete makes
// arena/fixed-width wins visible in BENCH_JSON, not just wall-clock. The
// replaceable global functions are defined below this namespace, gated on
// SHAPCQ_BENCH_ALLOC_HOOK (set by CMake for bench binaries only — tests
// also include this header, and a bench binary has exactly one TU that
// does, so the non-inline definitions appear exactly once per binary).
// Without the hook the counters just stay at zero.
// ---------------------------------------------------------------------------

namespace alloc_hook {
inline std::atomic<unsigned long long> bytes{0};
inline std::atomic<unsigned long long> calls{0};
}  // namespace alloc_hook

// Heap bytes requested / allocation calls since process start.
inline unsigned long long AllocBytes() {
  return alloc_hook::bytes.load(std::memory_order_relaxed);
}
inline unsigned long long AllocCalls() {
  return alloc_hook::calls.load(std::memory_order_relaxed);
}

// Peak resident set size in bytes (0 where unavailable).
inline unsigned long long PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<unsigned long long>(usage.ru_maxrss);  // bytes
#else
  return static_cast<unsigned long long>(usage.ru_maxrss) * 1024;  // KiB
#endif
#else
  return 0;
#endif
}

// Allocation delta around one invocation.
struct AllocDelta {
  unsigned long long bytes = 0;
  unsigned long long calls = 0;
};
inline AllocDelta MeasureAlloc(const std::function<void()>& fn) {
  const unsigned long long bytes_before = AllocBytes();
  const unsigned long long calls_before = AllocCalls();
  fn();
  return {AllocBytes() - bytes_before, AllocCalls() - calls_before};
}

// Wall-clock milliseconds of one invocation.
inline double TimeMs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

inline void Rule(char c = '-') {
  for (int i = 0; i < 78; ++i) std::putchar(c);
  std::putchar('\n');
}

// Common bench command line: `bench_foo [--smoke] [positional...]`.
// --smoke asks for CI-sized inputs (tiny, runs in seconds).
struct Args {
  bool smoke = false;
  std::vector<std::string> positional;

  // The i-th positional argument as an int, or `fallback` when absent.
  int Int(size_t i, int fallback) const {
    return i < positional.size() ? std::atoi(positional[i].c_str())
                                 : fallback;
  }
  long long Int64(size_t i, long long fallback) const {
    return i < positional.size() ? std::atoll(positional[i].c_str())
                                 : fallback;
  }
};

inline Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--smoke") {
      args.smoke = true;
    } else {
      args.positional.push_back(std::move(arg));
    }
  }
  return args;
}

// Builder for one `BENCH_JSON {...}` telemetry line. Keys are emitted in
// call order; Emit() prints the line to stdout. The output is always
// valid JSON: strings escape quotes, backslashes, and control bytes
// (\uXXXX), and non-finite doubles — which JSON cannot represent — are
// emitted as null.
//
//   bench::JsonLine("compute_all").Int("facts", n).Num("ms", ms).Emit();
class JsonLine {
 public:
  explicit JsonLine(const std::string& name) { Str("name", name); }

  JsonLine& Str(const char* key, const std::string& value) {
    Key(key);
    out_ += '"';
    for (char c : value) {
      if (c == '"' || c == '\\') {
        out_ += '\\';
        out_ += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buffer[8];
        std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(c)));
        out_ += buffer;
      } else {
        out_ += c;
      }
    }
    out_ += '"';
    return *this;
  }
  JsonLine& Int(const char* key, long long value) {
    Key(key);
    out_ += std::to_string(value);
    return *this;
  }
  JsonLine& Num(const char* key, double value) {
    Key(key);
    if (!std::isfinite(value)) {
      out_ += "null";
      return *this;
    }
    // Large enough for any finite double in %.3f form (up to ~309 integer
    // digits), so the number is never truncated mid-digit.
    char buffer[336];
    std::snprintf(buffer, sizeof(buffer), "%.3f", value);
    out_ += buffer;
    return *this;
  }
  JsonLine& Bool(const char* key, bool value) {
    Key(key);
    out_ += value ? "true" : "false";
    return *this;
  }

  // The JSON object built so far (what Emit prints after "BENCH_JSON ").
  std::string Json() const { return "{" + out_ + "}"; }

  void Emit() { std::printf("BENCH_JSON %s\n", Json().c_str()); }

 private:
  void Key(const char* key) {
    if (!out_.empty()) out_ += ',';
    out_ += '"';
    out_ += key;
    out_ += "\":";
  }
  std::string out_;
};

}  // namespace shapcq::bench

#if defined(SHAPCQ_BENCH_ALLOC_HOOK)
// Counting replacement allocation functions (deliberately not inline; see
// the alloc_hook comment above). Deletes are left to the default
// implementation-provided free path via std::free, matching the malloc
// calls here. Only totals are tracked — cumulative bytes requested and
// call count — which is what the BENCH_JSON alloc_bytes field reports.
namespace shapcq::bench::alloc_hook {
inline void* CountedAlloc(std::size_t size) {
  bytes.fetch_add(size, std::memory_order_relaxed);
  calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
inline void* CountedAllocAligned(std::size_t size, std::size_t align) {
  bytes.fetch_add(size, std::memory_order_relaxed);
  calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(align, (size + align - 1) / align * align))
    return p;
  throw std::bad_alloc();
}
inline void* CountedAllocNoThrow(std::size_t size) noexcept {
  bytes.fetch_add(size, std::memory_order_relaxed);
  calls.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
}  // namespace shapcq::bench::alloc_hook

void* operator new(std::size_t size) {
  return shapcq::bench::alloc_hook::CountedAlloc(size);
}
void* operator new[](std::size_t size) {
  return shapcq::bench::alloc_hook::CountedAlloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return shapcq::bench::alloc_hook::CountedAllocAligned(
      size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return shapcq::bench::alloc_hook::CountedAllocAligned(
      size, static_cast<std::size_t>(align));
}
// The nothrow variants must be replaced alongside the throwing ones: an
// implementation-provided nothrow new (e.g. ASan's) does not forward to
// the replaced throwing operator new, so its allocations (libstdc++'s
// stable_sort temporary buffer, for one) would be handed to the free()
// in the replaced operator delete — an alloc/dealloc mismatch.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return shapcq::bench::alloc_hook::CountedAllocNoThrow(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return shapcq::bench::alloc_hook::CountedAllocNoThrow(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
#endif  // SHAPCQ_BENCH_ALLOC_HOOK

#endif  // SHAPCQ_BENCH_BENCH_UTIL_H_
