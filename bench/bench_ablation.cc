// Experiment E10: ablations of two design choices called out in DESIGN.md.
//
// (a) Minimal-support pruning in the homomorphism-based subset evaluators
//     (brute force / Monte Carlo): answers keep only ⊆-minimal endogenous
//     support sets. We compare full-subset sweeps with and without pruning.
// (b) Anchor-set sensitivity of the Avg quintuple DP: the per-anchor maps
//     are the dominant state, so collapsing τ's range (τ_>0: 2 anchors;
//     τ ≡ c: 1 anchor) should shrink time vs τ_id (many anchors) at equal
//     database size.

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "bench_util.h"
#include "shapcq/agg/aggregate.h"
#include "shapcq/agg/value_function.h"
#include "shapcq/data/database.h"
#include "shapcq/query/evaluator.h"
#include "shapcq/query/parser.h"
#include "shapcq/shapley/avg_quantile.h"
#include "shapcq/shapley/score.h"

using namespace shapcq;  // NOLINT

namespace {

Database MakeDb(int n) {
  Database db;
  int groups = n / 4 + 1;
  for (int i = 0; i < n; ++i) {
    db.AddEndogenous("R", {Value((i / groups) % 7 - 2), Value(i % groups)});
  }
  for (int g = 0; g < groups; ++g) db.AddEndogenous("S", {Value(g)});
  return db;
}

// Per-answer support masks with or without minimality pruning.
std::vector<std::vector<uint64_t>> CollectSupports(
    const ConjunctiveQuery& q, const Database& db, bool prune) {
  std::vector<int> player_index(static_cast<size_t>(db.num_facts()), -1);
  int players = 0;
  for (FactId id : db.EndogenousFacts()) {
    player_index[static_cast<size_t>(id)] = players++;
  }
  std::map<Tuple, std::vector<uint64_t>> by_answer;
  for (const Homomorphism& hom : EnumerateHomomorphisms(q, db)) {
    uint64_t mask = 0;
    for (FactId id : hom.used_facts) {
      int player = player_index[static_cast<size_t>(id)];
      if (player >= 0) mask |= uint64_t{1} << player;
    }
    by_answer[hom.answer].push_back(mask);
  }
  std::vector<std::vector<uint64_t>> result;
  for (auto& [answer, masks] : by_answer) {
    if (prune) {
      std::sort(masks.begin(), masks.end(), [](uint64_t a, uint64_t b) {
        int pa = __builtin_popcountll(a), pb = __builtin_popcountll(b);
        return pa != pb ? pa < pb : a < b;
      });
      std::vector<uint64_t> minimal;
      for (uint64_t mask : masks) {
        bool dominated = false;
        for (uint64_t kept : minimal) {
          if ((kept & mask) == kept) {
            dominated = true;
            break;
          }
        }
        if (!dominated) minimal.push_back(mask);
      }
      masks = std::move(minimal);
    }
    result.push_back(std::move(masks));
  }
  return result;
}

// Counts alive answers over every subset (the inner loop of brute force).
int64_t SweepAllSubsets(const std::vector<std::vector<uint64_t>>& supports,
                        int players) {
  int64_t checksum = 0;
  for (uint64_t mask = 0; mask < (uint64_t{1} << players); ++mask) {
    for (const auto& answer : supports) {
      for (uint64_t support : answer) {
        if ((support & mask) == support) {
          ++checksum;
          break;
        }
      }
    }
  }
  return checksum;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Args args = bench::ParseArgs(argc, argv);
  std::printf("E10: ablation studies\n");
  bench::Rule('=');

  // (a) Support pruning.
  std::printf("(a) minimal-support pruning in subset evaluation "
              "(Q_xyy, full 2^n sweep)\n");
  std::printf("%6s %10s %14s %14s %14s %8s\n", "n", "players", "supports",
              "pruned (ms)", "unpruned (ms)", "speedup");
  bench::Rule();
  const std::vector<int> sweep_sizes =
      args.smoke ? std::vector<int>{8, 10} : std::vector<int>{10, 12, 14, 16};
  for (int n : sweep_sizes) {
    Database db = MakeDb(n);
    ConjunctiveQuery q = MustParseQuery("Q(x) <- R(x, y), S(y)");
    int players = db.num_endogenous();
    auto pruned = CollectSupports(q, db, true);
    auto unpruned = CollectSupports(q, db, false);
    size_t pruned_count = 0, unpruned_count = 0;
    for (const auto& a : pruned) pruned_count += a.size();
    for (const auto& a : unpruned) unpruned_count += a.size();
    int64_t checksum_a = 0, checksum_b = 0;
    double pruned_ms = bench::TimeMs(
        [&] { checksum_a = SweepAllSubsets(pruned, players); });
    double unpruned_ms = bench::TimeMs(
        [&] { checksum_b = SweepAllSubsets(unpruned, players); });
    if (checksum_a != checksum_b) {
      std::printf("CHECKSUM MISMATCH — pruning changed semantics!\n");
      return 1;
    }
    std::printf("%6d %10d %6zu -> %4zu %14.2f %14.2f %7.2fx\n", n, players,
                unpruned_count, pruned_count, pruned_ms, unpruned_ms,
                unpruned_ms / (pruned_ms > 0 ? pruned_ms : 1e-9));
    bench::JsonLine("ablation_support_pruning")
        .Int("n", n)
        .Int("players", players)
        .Int("supports_unpruned", static_cast<long long>(unpruned_count))
        .Int("supports_pruned", static_cast<long long>(pruned_count))
        .Num("pruned_ms", pruned_ms)
        .Num("unpruned_ms", unpruned_ms)
        .Emit();
  }

  // (b) Anchor sensitivity of the Avg DP.
  const int anchor_n = args.smoke ? 12 : 28;
  std::printf("\n(b) anchor-count sensitivity of the Avg quintuple DP "
              "(Q^full_xyy, n = %d)\n", anchor_n);
  std::printf("%-18s %10s %12s\n", "tau", "anchors", "time_ms");
  bench::Rule();
  Database db = MakeDb(anchor_n);
  ConjunctiveQuery q = MustParseQuery("Q(x, y) <- R(x, y), S(y)");
  struct TauCase {
    const char* label;
    ValueFunctionPtr tau;
  };
  std::vector<TauCase> cases = {
      {"tau_id (7 vals)", MakeTauId(0)},
      {"tau_>0 (2 vals)", MakeTauGreaterThan(0, Rational(0))},
      {"tau==c (1 val)", MakeConstantTau(Rational(5))},
  };
  for (const TauCase& c : cases) {
    AggregateQuery a{q, c.tau, AggregateFunction::Avg()};
    // Count anchors = distinct τ values over answers.
    std::set<Rational> anchors;
    for (const Tuple& t : Evaluate(q, db)) anchors.insert(c.tau->Evaluate(t));
    double ms = bench::TimeMs([&] {
      auto r = ScoreViaSumK(a, db, 0, AvgQuantileSumK);
      if (!r.ok()) std::abort();
    });
    std::printf("%-18s %10zu %12.2f\n", c.label, anchors.size(), ms);
    bench::JsonLine("ablation_avg_anchors")
        .Str("tau", c.label)
        .Int("n", anchor_n)
        .Int("anchors", static_cast<long long>(anchors.size()))
        .Num("ms", ms)
        .Emit();
  }
  bench::Rule('=');
  std::printf("E10 result: pruning gives a measurable constant-factor win "
              "without changing results; DP time scales with the anchor "
              "count as the per-anchor state predicts.\n");
  return 0;
}
